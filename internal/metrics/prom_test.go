package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func promSnapshot(t *testing.T) RegistrySnapshot {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("served_by")
	c.Add("local", 7)
	c.Add("origin", 3)
	c.Add(`odd"name\with`+"\nnewline", 1)
	h, err := r.Histogram("latency_ms", 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 5, 15, 95, 150, -3} {
		h.Observe(v)
	}
	m := r.Mean("hops")
	m.Observe(2)
	m.Observe(4)
	return r.Snapshot()
}

func TestWritePrometheusDeterministic(t *testing.T) {
	s := promSnapshot(t)
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, &s, "ccncoord"); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, &s, "ccncoord"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two expositions of one snapshot differ")
	}
	out := a.String()

	// Counter series, sorted by label, with escaped label values.
	wantLines := []string{
		"# TYPE ccncoord_served_by_total counter",
		`ccncoord_served_by_total{name="local"} 7`,
		`ccncoord_served_by_total{name="odd\"name\\with\nnewline"} 1`,
		`ccncoord_served_by_total{name="origin"} 3`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}
	// The escaped label must sort between "local" and "origin" (byte
	// order on the raw name, 'o' > 'l').
	if i, j := strings.Index(out, `name="local"`), strings.Index(out, `name="odd`); i > j {
		t.Error("counter series not in sorted label order")
	}

	// Histogram: cumulative buckets at occupied edges; underflow counts
	// toward every bucket; overflow only reaches +Inf.
	// Samples: -3 underflow; 5,5 -> bucket [0,10); 15 -> [10,20);
	// 95 -> [90,100); 150 overflow. Cumulative: le=10 -> 3, le=20 -> 4,
	// le=100 -> 5, +Inf -> 6.
	for _, want := range []string{
		"# TYPE ccncoord_latency_ms histogram",
		`ccncoord_latency_ms_bucket{le="10"} 3`,
		`ccncoord_latency_ms_bucket{le="20"} 4`,
		`ccncoord_latency_ms_bucket{le="100"} 5`,
		`ccncoord_latency_ms_bucket{le="+Inf"} 6`,
		"ccncoord_latency_ms_sum 267",
		"ccncoord_latency_ms_count 6",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}

	// Mean gauges.
	for _, want := range []string{
		"ccncoord_hops_mean 3",
		"ccncoord_hops_samples 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}

	// Every non-comment line is "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil, "x"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil snapshot produced output %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"served_by":   "served_by",
		"latency-ms":  "latency_ms",
		"9lives":      "_9lives",
		"a.b/c d":     "a_b_c_d",
		"ok:subsys_x": "ok:subsys_x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}
