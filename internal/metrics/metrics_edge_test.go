package metrics

import (
	"math"
	"testing"
)

// TestCounterZeroValue: the package documents zero-value readiness; a
// declared Counter must work without NewCounter (this panicked with a
// nil map write before the lazy initialization).
func TestCounterZeroValue(t *testing.T) {
	var c Counter
	c.Inc("x")
	c.Add("y", 3)
	if c.Get("x") != 1 || c.Get("y") != 3 {
		t.Errorf("zero-value counter: x=%d y=%d, want 1, 3", c.Get("x"), c.Get("y"))
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d, want 4", c.Total())
	}
	var empty Counter
	if empty.Get("absent") != 0 || empty.Total() != 0 || len(empty.Names()) != 0 {
		t.Error("reads on an untouched zero-value counter should report zeros")
	}
}

// TestHistogramOutOfRangeAccounting: samples outside [lo, hi) must be
// counted explicitly instead of being clamped into the edge buckets.
// Against the old clamping behavior the overflow sample inflated the
// last bucket, so Quantile(1) "resolved" to an in-range value below hi
// and the underflow sample dragged the first bucket's quantiles to lo's
// neighborhood while the mean said otherwise.
func TestHistogramOutOfRangeAccounting(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(-100)
	h.Observe(5)
	h.Observe(1000)
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("underflow=%d overflow=%d, want 1, 1", h.Underflow(), h.Overflow())
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3 (out-of-range samples still count)", h.Count())
	}
	if got, want := h.Mean(), (-100.0+5+1000)/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v (exact, including out-of-range mass)", got, want)
	}
	// The top third of the mass is overflow: its quantiles saturate at
	// hi instead of pretending the sample fell inside the last bucket.
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want saturation at hi=10", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("Quantile(0.99) = %v, want saturation at hi=10", got)
	}
	// The bottom third is underflow: saturation at lo.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want saturation at lo=0", got)
	}
}

// TestHistogramRejectsNonFinite: a NaN observation used to convert to an
// implementation-defined bucket index and poison sum, making Mean NaN
// forever; non-finite samples must be rejected and counted.
func TestHistogramRejectsNonFinite(t *testing.T) {
	h, err := NewHistogram(0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Rejected() != 3 {
		t.Errorf("Rejected = %d, want 3", h.Rejected())
	}
	if h.Count() != 0 || h.Underflow() != 0 || h.Overflow() != 0 {
		t.Errorf("non-finite samples leaked into counts: count=%d under=%d over=%d",
			h.Count(), h.Underflow(), h.Overflow())
	}
	h.Observe(5)
	if math.IsNaN(h.Mean()) || math.Abs(h.Mean()-5) > 1e-12 {
		t.Errorf("Mean after NaN rejection = %v, want 5", h.Mean())
	}
}

// TestHistogramQuantileEdges: table-driven edge cases of the quantile
// estimator.
func TestHistogramQuantileEdges(t *testing.T) {
	tests := []struct {
		name    string
		lo, hi  float64
		buckets int
		samples []float64
		q       float64
		want    float64
	}{
		{"q0 returns lower edge of first occupied bucket", 0, 10, 10, []float64{5.5, 7.5}, 0, 5},
		{"q1 returns upper edge of last occupied bucket", 0, 10, 10, []float64{5.5, 7.5}, 1, 8},
		{"single bucket interpolates within the range", 0, 1, 1, []float64{0.2, 0.4, 0.6, 0.8}, 0.5, 0.5},
		{"single bucket q1 is hi", 0, 1, 1, []float64{0.5}, 1, 1},
		{"all mass in overflow saturates at hi", 0, 10, 5, []float64{100, 200, 300}, 0.5, 10},
		{"all mass in underflow saturates at lo", 0, 10, 5, []float64{-1, -2, -3}, 0.5, 0},
		{"median below the overflow mass stays in range", 0, 10, 5, []float64{1, 1, 1, 100}, 0.5, 4.0 / 3},
		{"tail inside the overflow mass saturates", 0, 10, 5, []float64{1, 1, 100, 200}, 0.9, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, err := NewHistogram(tt.lo, tt.hi, tt.buckets)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range tt.samples {
				h.Observe(x)
			}
			if got := h.Quantile(tt.q); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
			}
		})
	}
}

// TestHistogramInRangeUnchanged: purely in-range data must behave
// exactly as before the out-of-range accounting (the simulator's
// headroom-sized histograms rely on this).
func TestHistogramInRangeUnchanged(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.5; x < 10; x++ {
		h.Observe(x)
	}
	if h.Underflow() != 0 || h.Overflow() != 0 || h.Rejected() != 0 {
		t.Error("in-range data should not touch the out-of-range counters")
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("median = %v, want 5", got)
	}
}

// TestDowntimeTotalInsideOverlappingOpenSpan: Total queried while an
// overlap-merged span is still open must count from the span's opening,
// and an end before the opening contributes nothing.
func TestDowntimeTotalInsideOverlappingOpenSpan(t *testing.T) {
	var d Downtime
	d.Down(10)
	d.Down(20) // overlap: still the same span
	d.Up(22)   // one of the two faults recovers; span stays open
	if !d.Active() {
		t.Fatal("span should still be open with one fault down")
	}
	if got := d.Total(25); got != 15 {
		t.Errorf("Total(25) inside open span = %v, want 15", got)
	}
	if got := d.Total(5); got != 0 {
		t.Errorf("Total(5) before the span opened = %v, want 0", got)
	}
	if d.Spans() != 1 {
		t.Errorf("Spans = %d, want 1 (overlaps merge)", d.Spans())
	}
}

// TestAvailabilityZeroObservations: an idle system is trivially
// available — no observations must read as availability 1 with zero
// counts, in both the live value and the snapshot.
func TestAvailabilityZeroObservations(t *testing.T) {
	var a Availability
	if a.Value() != 1 {
		t.Errorf("Value with no observations = %v, want 1", a.Value())
	}
	if a.OK() != 0 || a.Failed() != 0 {
		t.Errorf("counts = %d ok, %d failed, want zeros", a.OK(), a.Failed())
	}
	s := a.Snapshot()
	if s.OK != 0 || s.Failed != 0 || s.Value != 1 {
		t.Errorf("snapshot = %+v, want zeros with value 1", s)
	}
}
