package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ccncoord/internal/ccn"
	"ccncoord/internal/fault"
	"ccncoord/internal/trace"
)

// faultTraceScenario is a small coordinated run with one scripted crash,
// exercising every observability surface: data-plane packets, retries,
// fault drops, heartbeats, and a repair pass.
func faultTraceScenario(t *testing.T) Scenario {
	t.Helper()
	return Scenario{
		Topology:    mesh4(t),
		CatalogSize: 100,
		ZipfS:       0.8,
		Capacity:    10,
		Coordinated: 5,
		Policy:      PolicyCoordinated,
		Requests:    2000,
		Seed:        42,

		AccessLatency: 1,
		OriginLatency: 50,
		OriginGateway: 0,
		RetxTimeout:   150,

		HeartbeatInterval: 50,
		HeartbeatMisses:   2,
		FaultScript:       []fault.Event{{At: 300, Kind: fault.RouterDown, Node: 1}},
	}
}

// TestManifestTotalsMatchRun verifies the central manifest invariant:
// every number in the manifest equals the corresponding Result field or
// network accessor — the manifest serializes the run's accounting, it
// does not re-measure.
func TestManifestTotalsMatchRun(t *testing.T) {
	sc := faultTraceScenario(t)
	sc.EmitManifest = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Manifest
	if m == nil {
		t.Fatal("EmitManifest set but Result.Manifest is nil")
	}
	if m.Schema != ManifestSchema {
		t.Errorf("schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Policy != sc.Policy.String() || m.Assignment != sc.Assignment.String() {
		t.Errorf("policy/assignment %q/%q, want %q/%q", m.Policy, m.Assignment, sc.Policy, sc.Assignment)
	}
	if m.Routers != sc.Topology.N() || m.Seed != sc.Seed || m.Requests != res.Requests {
		t.Errorf("header mismatch: %+v", m)
	}

	// The served-by counter totals exactly the measured requests.
	served, ok := m.Metrics.Counters["served_by"]
	if !ok {
		t.Fatal("manifest lacks the served_by counter")
	}
	if served.Total != int64(res.Requests) {
		t.Errorf("served_by total %d, want %d measured requests", served.Total, res.Requests)
	}

	// The latency histogram observed every successful request, and its
	// out-of-range accounting is internally consistent.
	hist, ok := m.Metrics.Histograms["latency_ms"]
	if !ok {
		t.Fatal("manifest lacks the latency_ms histogram")
	}
	if hist.Count != m.Availability.OK {
		t.Errorf("latency histogram count %d, want %d successful requests", hist.Count, m.Availability.OK)
	}
	var inBuckets int64
	for _, b := range hist.Buckets {
		inBuckets += b[1]
	}
	if inBuckets+hist.Underflow+hist.Overflow != hist.Count {
		t.Errorf("bucket mass %d + under %d + over %d != count %d", inBuckets, hist.Underflow, hist.Overflow, hist.Count)
	}

	// Transport mirrors the Result counters exactly.
	wantTransport := ManifestTransport{
		InterestTransmissions: res.InterestTransmissions,
		DataTransmissions:     res.DataTransmissions,
		DroppedInterests:      res.DroppedInterests,
		DroppedData:           res.DroppedData,
		Retransmissions:       res.Retransmissions,
		FaultDrops:            res.FaultDrops,
		ExpiredInterests:      res.ExpiredInterests,
		FailedRequests:        res.FailedRequests,
		RouteRecomputes:       res.RouteRecomputes,
		QueuedPackets:         res.QueuedPackets,
		MeanQueueingDelayMs:   res.MeanQueueingDelay,
	}
	if m.Transport != wantTransport {
		t.Errorf("transport %+v, want %+v", m.Transport, wantTransport)
	}

	// Coordination mirrors the protocol counters exactly.
	wantCoord := ManifestCoordination{
		Messages:           res.CoordMessages,
		ConvergenceMs:      res.CoordConvergence,
		Heartbeats:         res.HeartbeatMessages,
		RepairMessages:     res.RepairMessages,
		Repairs:            len(res.Repairs),
		MeanTimeToRepairMs: res.MeanTimeToRepair,
	}
	if m.Coordination != wantCoord {
		t.Errorf("coordination %+v, want %+v", m.Coordination, wantCoord)
	}
	if m.Coordination.Heartbeats == 0 || m.Coordination.Repairs == 0 {
		t.Error("fault scenario produced no heartbeats or repairs in the manifest")
	}

	// Per-router stats sum to the recorded totals, and every router is
	// present in ID order.
	if len(m.Nodes) != sc.Topology.N() {
		t.Fatalf("%d node snapshots, want %d", len(m.Nodes), sc.Topology.N())
	}
	for i, n := range m.Nodes {
		if int(n.Router) != i {
			t.Errorf("node %d has router id %d", i, n.Router)
		}
	}
	if got := ccn.SumStats(m.Nodes); got != m.NodeTotals {
		t.Errorf("node totals %+v, want sum %+v", m.NodeTotals, got)
	}

	if m.Summary.Availability != res.Availability || m.Summary.DowntimeMs != res.RouterDowntime {
		t.Errorf("summary availability/downtime %v/%v, want %v/%v",
			m.Summary.Availability, m.Summary.DowntimeMs, res.Availability, res.RouterDowntime)
	}
	if m.Summary.MeanLatencyMs != res.MeanLatency || m.Summary.OriginLoad != res.OriginLoad {
		t.Errorf("summary %+v does not mirror result", m.Summary)
	}
	if m.Engine.EventsProcessed == 0 || m.Engine.PendingPeak == 0 {
		t.Errorf("engine gauges empty: %+v", m.Engine)
	}
	if m.Trace != nil {
		t.Error("untraced run has a trace section")
	}
}

// TestTracingDoesNotPerturbResult is the determinism guarantee: a run
// with a stride-1 tracer attached produces the identical Result, and
// the trace itself is valid JSONL whose accounting matches the tracer.
func TestTracingDoesNotPerturbResult(t *testing.T) {
	base, err := Run(faultTraceScenario(t))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tr, err := trace.New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := faultTraceScenario(t)
	sc.Tracer = tr
	sc.EmitManifest = true
	traced, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	m := traced.Manifest
	traced.Manifest = nil
	if !reflect.DeepEqual(base, traced) {
		t.Errorf("tracing perturbed the result:\nbase:   %+v\ntraced: %+v", base, traced)
	}

	// Every line is one valid Event; line count matches the tracer's
	// accounting; stride 1 sampled everything.
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if uint64(len(lines)) != tr.Emitted() {
		t.Fatalf("%d trace lines, tracer reports %d emitted", len(lines), tr.Emitted())
	}
	if tr.Seen() != tr.Emitted() {
		t.Errorf("stride 1 saw %d but emitted %d", tr.Seen(), tr.Emitted())
	}
	kinds := make(map[string]int)
	for i, line := range lines {
		var ev trace.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not a valid event: %v\n%s", i+1, err, line)
		}
		if ev.Kind == "" {
			t.Fatalf("line %d has no kind: %s", i+1, line)
		}
		kinds[ev.Kind]++
	}
	for _, want := range []string{
		trace.KindIssue, trace.KindInterest, trace.KindData, trace.KindRequest,
		trace.KindFault, trace.KindHeartbeat, trace.KindRepair, trace.KindDrop,
	} {
		if kinds[want] == 0 {
			t.Errorf("trace contains no %q events (kinds: %v)", want, kinds)
		}
	}
	// Stride-1 cross-checks against the run's own accounting.
	if got := kinds[trace.KindRequest]; got != base.Requests {
		t.Errorf("%d request events, want %d", got, base.Requests)
	}
	if got := kinds[trace.KindIssue]; got != base.Requests {
		t.Errorf("%d issue events, want %d", got, base.Requests)
	}
	if got := int64(kinds[trace.KindHeartbeat]); got < base.HeartbeatMessages {
		t.Errorf("%d heartbeat events, want at least the %d delivered heartbeats", got, base.HeartbeatMessages)
	}
	if got := len(base.Repairs); kinds[trace.KindRepair] != got {
		t.Errorf("%d repair events, want %d", kinds[trace.KindRepair], got)
	}

	if m == nil || m.Trace == nil {
		t.Fatal("traced manifest lacks the trace section")
	}
	if m.Trace.Stride != 1 || m.Trace.Seen != tr.Seen() || m.Trace.Emitted != tr.Emitted() {
		t.Errorf("manifest trace %+v, tracer reports stride=1 seen=%d emitted=%d", m.Trace, tr.Seen(), tr.Emitted())
	}
}

// TestManifestBytesDeterministic runs the same scenario twice and
// requires byte-identical serialized manifests.
func TestManifestBytesDeterministic(t *testing.T) {
	emit := func() []byte {
		sc := faultTraceScenario(t)
		sc.EmitManifest = true
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Manifest.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Error("identical scenarios produced different manifest bytes")
	}
	// The manifest round-trips through JSON.
	var m RunManifest
	if err := json.Unmarshal(a, &m); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if m.Schema != ManifestSchema {
		t.Errorf("round-tripped schema %q", m.Schema)
	}
}

// TestTraceSampledRun verifies request-coherent sampling end to end: a
// stride-100 tracer keeps only lifecycles of requests on the stride
// (never fragments of others), always keeps control-plane events, and
// leaves the run unperturbed.
func TestTraceSampledRun(t *testing.T) {
	base, err := Run(faultTraceScenario(t))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tr, err := trace.NewSampled(&buf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sc := faultTraceScenario(t)
	sc.Tracer = tr
	sampled, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, sampled) {
		t.Error("sampled tracing perturbed the result")
	}
	if got := uint64(bytes.Count(buf.Bytes(), []byte("\n"))); got != tr.Emitted() {
		t.Errorf("%d trace lines, tracer reports %d", got, tr.Emitted())
	}
	if tr.Emitted() == 0 || tr.Emitted() >= tr.Seen() {
		t.Fatalf("stride 100 emitted %d of %d seen", tr.Emitted(), tr.Seen())
	}
	// Every emitted data-plane event belongs to a request on the
	// stride; every sampled request's lifecycle is complete (it has its
	// own issue event whenever it has any event at all, measured
	// requests only).
	issued := make(map[int64]bool)
	other := make(map[int64]bool)
	for _, line := range bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n")) {
		var ev trace.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("invalid trace line: %v\n%s", err, line)
		}
		if ev.Req == 0 {
			switch ev.Kind {
			case trace.KindFault, trace.KindHeartbeat, trace.KindRepair:
				// Control-plane events carry no request identity and
				// always pass the sampler.
			default:
				t.Fatalf("data-plane event without request identity: %s", line)
			}
			continue
		}
		if (ev.Req-1)%100 != 0 {
			t.Fatalf("event off the request stride: %s", line)
		}
		if ev.Kind == trace.KindIssue {
			issued[ev.Req] = true
		} else {
			other[ev.Req] = true
		}
	}
	if len(issued) == 0 {
		t.Fatal("no issue events sampled")
	}
}
