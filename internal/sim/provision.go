package sim

import (
	"fmt"
	"math"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/ccn"
	"ccncoord/internal/coord"
	"ccncoord/internal/timeline"
	"ccncoord/internal/topology"
)

// provisioned bundles the policy-dependent wiring shared by the serial
// and sharded run paths: the store factory and caching mode handed to
// the data plane, the optional redirection directory, and the live
// coordinated assignment plus replicated local band the fault-repair
// and checkpoint machinery mutate.
type provisioned struct {
	directory ccn.Directory
	// coordAsg is the live coordinated assignment (PolicyCoordinated);
	// the failover repair mutates it in place, which also redirects the
	// directory. localSet is the replicated local band, kept for
	// coordinator checkpoints.
	coordAsg *coord.Assignment
	localSet []catalog.ID
	mode     ccn.CachingMode
	stores   func(topology.NodeID) (cache.Store, error)
	// capOf returns a router's storage capacity (heterogeneous override
	// or the uniform Capacity).
	capOf func(topology.NodeID) int64
}

// provisionPolicy builds the policy's store provisioning and records
// the placement's coordination cost (messages, convergence bound) into
// res. It is shared by the serial and sharded run paths so both install
// bit-identical placements.
func provisionPolicy(sc Scenario, routers []topology.NodeID, res *Result) (provisioned, error) {
	prov := provisioned{mode: ccn.CacheNone}
	prov.capOf = func(r topology.NodeID) int64 {
		if sc.Capacities != nil {
			return sc.Capacities[r]
		}
		return sc.Capacity
	}
	capOf := prov.capOf
	// coordOf returns router r's coordinated slots, preserving the
	// global split ratio under heterogeneous capacities.
	coordOf := func(r topology.NodeID) int64 {
		if sc.Capacities == nil || sc.Capacity == 0 {
			return sc.Coordinated
		}
		return sc.Coordinated * capOf(r) / sc.Capacity
	}

	switch sc.Policy {
	case PolicyNonCoordinated:
		prov.stores = func(r topology.NodeID) (cache.Store, error) {
			// The non-coordinated steady state is the contiguous top-k
			// band; an interval store avoids materializing it per router.
			return cache.NewStaticRange(1, min64(capOf(r), sc.CatalogSize))
		}
	case PolicyCoordinated:
		if sc.Placement != nil {
			// Externally computed provisioning (e.g. the coordination
			// protocol's estimate): install it verbatim.
			p := sc.Placement
			prov.directory = p.Assignment
			prov.coordAsg = p.Assignment
			prov.localSet = p.LocalSet
			res.CoordMessages = 2 * int64(p.Assignment.Size())
			recordInstall(sc, routers, p.Assignment, int64(len(p.LocalSet)), res.CoordMessages)
			prov.stores = func(r topology.NodeID) (cache.Store, error) {
				local, err := cache.NewStatic(p.LocalSet)
				if err != nil {
					return nil, err
				}
				coordPart, err := cache.NewStatic(p.Assignment.Contents(r))
				if err != nil {
					return nil, err
				}
				return cache.NewPartitioned(local, coordPart)
			}
			break
		}
		// The replicated local prefix must be common across routers for
		// the striped band to start at a well-defined rank; use the
		// largest local prefix (matching model.HeteroConfig).
		var maxLocal, totalCoord int64
		quotas := make([]int64, len(routers))
		for i, r := range routers {
			local := capOf(r) - coordOf(r)
			if local > maxLocal {
				maxLocal = local
			}
			quotas[i] = coordOf(r)
			totalCoord += quotas[i]
		}
		band := cache.RankRange(maxLocal+1, min64(maxLocal+totalCoord, sc.CatalogSize))
		var asg *coord.Assignment
		var err error
		switch sc.Assignment {
		case AssignHash:
			if sc.Capacities != nil {
				return provisioned{}, fmt.Errorf("sim: hash assignment does not support heterogeneous capacities")
			}
			asg, err = coord.HashByContent(routers, band, sc.Coordinated)
		default:
			asg, err = coord.StripeWeighted(routers, band, quotas)
		}
		if err != nil {
			return provisioned{}, fmt.Errorf("sim: assigning coordinated band: %w", err)
		}
		prov.directory = asg
		prov.coordAsg = asg
		if maxLocal > 0 {
			prov.localSet = cache.RankRange(1, min64(maxLocal, sc.CatalogSize))
		}
		// The placement installation costs one state message up and one
		// directive down per coordinated content (the protocol's
		// measured counterpart of W(x) = w*n*x).
		res.CoordMessages = 2 * totalCoord
		res.CoordConvergence = 0
		if m := sc.Topology.MeasuredLatencies(); m != nil {
			res.CoordConvergence = 2 * maxPairwiseLatency(m)
		}
		recordInstall(sc, routers, asg, maxLocal, res.CoordMessages)
		prov.stores = func(r topology.NodeID) (cache.Store, error) {
			local, err := cache.NewStaticRange(1, min64(capOf(r)-coordOf(r), sc.CatalogSize))
			if err != nil {
				return nil, err
			}
			coordPart, err := cache.NewStatic(asg.Contents(r))
			if err != nil {
				return nil, err
			}
			return cache.NewPartitioned(local, coordPart)
		}
	case PolicyLRU:
		prov.mode = ccn.CacheLCE
		prov.stores = func(r topology.NodeID) (cache.Store, error) {
			return cache.NewLRU(int(capOf(r)))
		}
	case PolicyLFU:
		prov.mode = ccn.CacheLCE
		prov.stores = func(r topology.NodeID) (cache.Store, error) {
			return cache.NewLFU(int(capOf(r)))
		}
	case PolicySLRU:
		prov.mode = ccn.CacheLCE
		prov.stores = func(r topology.NodeID) (cache.Store, error) {
			return cache.NewSLRU(int(capOf(r)), 0.8)
		}
	case PolicyTwoQ:
		prov.mode = ccn.CacheLCE
		prov.stores = func(r topology.NodeID) (cache.Store, error) {
			return cache.NewTwoQ(int(capOf(r)), 0.25)
		}
	case PolicyProbCache:
		prov.mode = ccn.CacheProb
		prov.stores = func(r topology.NodeID) (cache.Store, error) {
			return cache.NewLRU(int(capOf(r)))
		}
	default:
		return provisioned{}, fmt.Errorf("sim: unknown policy %d", sc.Policy)
	}
	return prov, nil
}

// maxPairwiseLatency returns the largest entry of a measured latency
// matrix — the model's per-exchange unit cost w.
func maxPairwiseLatency(m [][]float64) float64 {
	var maxLat float64
	for i := range m {
		for j := range m[i] {
			maxLat = math.Max(maxLat, m[i][j])
		}
	}
	return maxLat
}

// recordInstall appends one placement-installation record to the
// scenario's timeline ring; a nil ring records nothing. The epoch
// number continues the ring's own count so a ring shared across runs
// accumulates one continuous timeline. The measured message count is
// compared against the model's 2*n*ceil(size/n) budget for the
// effective per-router coordinated quota; WallMs stays zero — batch
// installation is setup, and keeping the record deterministic keeps
// telemetry-on manifests reproducible outside the explicitly
// wall-clock engine fields.
func recordInstall(sc Scenario, routers []topology.NodeID, asg *coord.Assignment, localSlots, messages int64) {
	ring := sc.Timeline
	if ring == nil || asg == nil {
		return
	}
	n := int64(len(routers))
	size := int64(asg.Size())
	xEff := (size + n - 1) / n // effective per-router coordinated quota
	var w float64
	if m := sc.Topology.MeasuredLatencies(); m != nil {
		w = maxPairwiseLatency(m)
	}
	var level float64
	if sc.Capacity > 0 {
		level = float64(xEff) / float64(sc.Capacity)
	}
	up := messages / 2
	ring.Append(timeline.EpochRecord{
		Epoch:         int64(ring.Total()) + 1,
		Requests:      int64(sc.Requests),
		Messages:      messages,
		MessagesUp:    up,
		MessagesDown:  messages - up,
		BoundMessages: 2 * n * xEff,
		UnitCostMs:    w,
		BoundCostMs:   w * float64(n) * float64(xEff),
		ConvergenceMs: 2 * w,
		LocalSlots:    localSlots,
		CoordSlots:    xEff,
		Level:         level,
		Churn:         coord.Churn(nil, asg),
	})
}
