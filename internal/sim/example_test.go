package sim_test

import (
	"fmt"

	"ccncoord/internal/sim"
)

// ExampleMotivatingExample reproduces the paper's Table I on the
// packet-level data plane.
func ExampleMotivatingExample() {
	cmp, err := sim.MotivatingExample(100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("non-coordinated: origin %.0f%%, hops %.2f, messages %d\n",
		100*cmp.NonCoordinated.OriginLoad, cmp.NonCoordinated.MeanHops, cmp.NonCoordinated.CoordMessages)
	fmt.Printf("coordinated:     origin %.0f%%, hops %.2f, messages %d\n",
		100*cmp.Coordinated.OriginLoad, cmp.Coordinated.MeanHops, cmp.Coordinated.CoordMessages)
	// Output:
	// non-coordinated: origin 33%, hops 0.67, messages 0
	// coordinated:     origin 0%, hops 0.50, messages 1
}
