// Sharded scenario execution: the same measurement as runSerial, driven
// by the conservative parallel engine. The topology is partitioned
// deterministically (topology.PartitionGraph), each region's routers
// live on one event-loop shard, and the minimum latency over cut edges
// is the engine's lookahead — no cross-shard packet can arrive sooner,
// so shards safely run ahead of each other by one window.
//
// Determinism is preserved end to end: request identities are dealt in
// global arrival-time order before the run (the serial engine's shared
// counter would allocate them in exactly that order), each shard records
// its completions into a private buffer, and the buffers are merged in
// (completion-time, request-ID) order after the run — the order the
// serial engine fires completion callbacks in — before being replayed
// through the same aggregation arithmetic. A scenario run at any shard
// count therefore produces an identical Result.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"ccncoord/internal/catalog"
	"ccncoord/internal/ccn"
	"ccncoord/internal/coord"
	"ccncoord/internal/des"
	"ccncoord/internal/metrics"
	"ccncoord/internal/topology"
	"ccncoord/internal/workload"
)

// maxAutoShards caps automatic shard selection: beyond ~8 shards the
// window-barrier cost grows faster than the per-shard work shrinks on
// the topology sizes the auto rule targets.
const maxAutoShards = 8

// ResolveShards decides how many event-loop shards the scenario runs
// on. An explicit Shards >= 2 is honored — clamped to the router count —
// unless the scenario is not shardable (see shardBlockers), in which
// case the run falls back to the serial engine. Shards == 1 forces the
// serial engine. Shards == 0 picks automatically: serial below
// topology.DenseAutoThreshold routers — keeping every calibrated-dataset
// artifact on the exact code path that produced it — and
// min(maxAutoShards, GOMAXPROCS) above it.
//
// Callers that need to know *why* an explicit request was downgraded
// should use ResolveShardsReason; this wrapper discards the reason.
func ResolveShards(sc Scenario) int {
	p, _ := ResolveShardsReason(sc)
	return p
}

// ResolveShardsReason resolves the shard count like ResolveShards and
// additionally reports why an explicitly requested multi-shard run
// (Shards >= 2) was downgraded to the serial engine. The reason is
// empty whenever no downgrade happened: the request was honored, the
// caller asked for serial, or the automatic rule (Shards == 0) chose
// serial — auto picking serial is policy, not a fallback.
func ResolveShardsReason(sc Scenario) (parts int, fallback string) {
	n := sc.Topology.N()
	p := sc.Shards
	explicit := p >= 2
	if p == 0 {
		if n < topology.DenseAutoThreshold {
			return 1, ""
		}
		p = runtime.GOMAXPROCS(0)
		if p > maxAutoShards {
			p = maxAutoShards
		}
	}
	if p < 2 {
		return 1, ""
	}
	if blockers := shardBlockers(sc); len(blockers) > 0 {
		if explicit {
			return 1, "scenario not shardable: " + strings.Join(blockers, ", ")
		}
		return 1, ""
	}
	if p > n {
		p = n
	}
	return p, ""
}

// shardBlockers lists the scenario features that keep it off the
// sharded engine. Features that funnel every event through one piece of
// globally ordered shared state — fault and chaos timelines, the loss
// and probabilistic-admission RNGs, link-queueing accumulators, the
// trace stream, and workload factories with unknown internal sharing —
// run serially instead. An empty list means the scenario is shardable.
func shardBlockers(sc Scenario) []string {
	var b []string
	if sc.faultsEnabled() {
		b = append(b, "fault injection")
	}
	if sc.LossRate != 0 {
		b = append(b, "loss process")
	}
	if sc.LinkRate != 0 {
		b = append(b, "link queueing")
	}
	if sc.Tracer != nil {
		b = append(b, "event tracing")
	}
	if sc.Policy == PolicyProbCache {
		b = append(b, "probabilistic caching")
	}
	if sc.WorkloadFactory != nil {
		b = append(b, "custom workload factory")
	}
	return b
}

// runSharded executes the (already validated) scenario on parts
// event-loop shards.
func runSharded(sc Scenario, parts int) (Result, error) {
	part, err := topology.PartitionGraph(sc.Topology, parts)
	if err != nil {
		return Result{}, fmt.Errorf("sim: partitioning topology: %w", err)
	}
	if part.Parts < 2 || !(part.CutLatency > 0) {
		// A zero-latency cut edge leaves no lookahead to run ahead on;
		// fall back to the serial engine rather than degenerate into
		// lock-step windows. Record the downgrade when the caller asked
		// for shards explicitly, so the manifest does not read as a
		// sharded run that never happened.
		if sc.Shards >= 2 {
			sc.shardFallbackReason = "degenerate partition: no positive-latency cut edge for lookahead"
		}
		return runSerial(sc)
	}
	se, err := des.NewSharded(part.Parts, part.CutLatency)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if sc.EngineTelemetry {
		se.EnableTelemetry()
	}
	cat, err := catalog.New(sc.CatalogSize, "/sim")
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	res := Result{Policy: sc.Policy}

	routers := make([]topology.NodeID, sc.Topology.N())
	for i := range routers {
		routers[i] = topology.NodeID(i)
	}
	prov, err := provisionPolicy(sc, routers, &res)
	if err != nil {
		return Result{}, err
	}

	net, err := ccn.NewShardedNetwork(se, part.Of, sc.Topology, cat, ccn.Options{
		AccessLatency: sc.AccessLatency,
		Stores:        prov.stores,
		Mode:          prov.mode,
		Directory:     prov.directory,
		RetxTimeout:   sc.RetxTimeout,
		Routing:       sc.Routing,
	})
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if sc.OriginGateway >= 0 {
		err = net.AttachOriginAt(sc.OriginGateway, sc.OriginLatency)
	} else {
		err = net.AttachOriginUniform(sc.OriginLatency)
	}
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	// Request quotas, identical to the serial layout.
	interArrival := sc.MeanInterArrival
	if interArrival <= 0 {
		interArrival = 1
	}
	total := sc.Requests + sc.Warmup
	perRouter := total / len(routers)
	extra := total % len(routers)
	warmPerRouter := sc.Warmup / len(routers)
	warmExtra := sc.Warmup % len(routers)
	reqsOf := func(i int) (nReq, nWarm int) {
		nReq = perRouter
		if i < extra {
			nReq++
		}
		nWarm = warmPerRouter
		if i < warmExtra {
			nWarm++
		}
		return nReq, nWarm
	}

	// Deal the global request identities before the run; the serial
	// engine's shared counter would allocate them in exactly this order.
	ids := assignRequestIDs(sc.Seed, len(routers), interArrival, reqsOf)

	// Per-shard completion buffers and error slots. Completion callbacks
	// run on the shard owning the client's first-hop router, so each
	// buffer is touched by exactly one shard; they are merged and
	// replayed single-threaded after the run.
	nShards := se.Shards()
	bufs := make([][]ccn.RequestResult, nShards)
	errs := make([]error, nShards)
	measuredCBs := make([]func(ccn.RequestResult), nShards)
	for s := 0; s < nShards; s++ {
		s := s
		measuredCBs[s] = func(result ccn.RequestResult) { bufs[s] = append(bufs[s], result) }
	}
	warmCB := func(ccn.RequestResult) {}

	var issue func(p *shardArrivalProc)
	issue = func(p *shardArrivalProc) {
		s := p.shard.ID()
		if errs[s] != nil {
			return // this shard's stream already failed; drain quietly
		}
		id := p.gen.Next()
		cb := measuredCBs[s]
		if p.k < p.nWarm {
			cb = warmCB
		}
		reqID := p.ids[p.k]
		p.k++
		if err := net.RequestWithID(p.router, id, reqID, cb); err != nil {
			errs[s] = fmt.Errorf("sim: issuing request at router %d: %w", p.router, err)
			return
		}
		if p.k < len(p.ids) {
			p.t += p.rng.ExpFloat64() * interArrival
			if err := p.shard.At(p.t, p.tick); err != nil {
				errs[s] = fmt.Errorf("sim: scheduling request: %w", err)
			}
		}
	}

	family, err := workload.NewZipfFamily(sc.ZipfS, sc.CatalogSize)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	for i, r := range routers {
		gen, err := family.Gen(WorkloadSeed(sc.Seed, i))
		if err != nil {
			return Result{}, fmt.Errorf("sim: workload for router %d: %w", r, err)
		}
		nReq, nWarm := reqsOf(i)
		if nReq == 0 {
			continue
		}
		p := &shardArrivalProc{
			router: r,
			shard:  se.Shard(int(part.Of[r])),
			gen:    gen,
			rng:    rand.New(rand.NewSource(ArrivalSeed(sc.Seed, i))),
			ids:    ids[i],
			nWarm:  nWarm,
		}
		p.tick = func() { issue(p) }
		p.t = p.rng.ExpFloat64() * interArrival
		if err := p.shard.At(p.t, p.tick); err != nil {
			return Result{}, fmt.Errorf("sim: scheduling request: %w", err)
		}
	}

	se.Run()

	for _, e := range errs {
		if e != nil {
			return Result{}, e
		}
	}

	// Merge the per-shard buffers into serial completion order. The key
	// (CompletedAt, Req) is unique per request and matches the serial
	// engine's callback order: simultaneous completions only arise from
	// aggregated client faces at one router, which the serial engine
	// fires in face order — ascending request ID.
	all := bufs[0]
	for _, b := range bufs[1:] {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].CompletedAt != all[j].CompletedAt {
			return all[i].CompletedAt < all[j].CompletedAt
		}
		return all[i].Req < all[j].Req
	})
	measured := len(all)
	if measured == 0 {
		return Result{}, fmt.Errorf("sim: no measured requests completed")
	}

	// Replay the merged completions through the same aggregation
	// arithmetic runSerial applies in its completion callback, in the
	// same order, so every mean and histogram is bit-identical.
	reg := metrics.NewRegistry()
	latency := reg.Mean("latency_ms")
	hops := reg.Mean("hops")
	peerHops := reg.Mean("peer_hops")
	tierLat := [3]*metrics.Mean{
		reg.Mean("tier_latency_local_ms"),
		reg.Mean("tier_latency_peer_ms"),
		reg.Mean("tier_latency_origin_ms"),
	}
	maxRTT := 2 * (sc.AccessLatency + 2*net.Routes().MaxDist() + sc.OriginLatency) * rttHeadroom
	latencyHist, err := reg.Histogram("latency_ms", 0, math.Max(maxRTT, 1), 2048)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	counts := reg.Counter("served_by")
	peerServes := make(map[topology.NodeID]int64)
	var reportCounts []map[catalog.ID]int64
	if sc.CollectReports {
		reportCounts = make([]map[catalog.ID]int64, len(routers))
		for i := range reportCounts {
			reportCounts[i] = make(map[catalog.ID]int64)
		}
	}
	var avail metrics.Availability
	for _, result := range all {
		if sc.Observer != nil {
			sc.Observer(result)
		}
		counts.Inc(result.ServedBy.String())
		if result.Failed {
			avail.ObserveFailed()
			continue
		}
		avail.ObserveOK()
		latency.Observe(result.Latency())
		latencyHist.Observe(result.Latency())
		hops.Observe(float64(result.Hops))
		tierLat[int(result.ServedBy)].Observe(result.Latency())
		if result.ServedBy == ccn.ServedPeer {
			peerHops.Observe(float64(result.Hops))
			peerServes[result.Server]++
		}
		if reportCounts != nil {
			reportCounts[result.Router][result.Content]++
		}
	}

	res.Requests = measured
	res.OriginLoad = float64(counts.Get("origin")) / float64(measured)
	res.LocalHit = float64(counts.Get("local")) / float64(measured)
	res.PeerHit = float64(counts.Get("peer")) / float64(measured)
	res.MeanLatency = latency.Value()
	res.LatencyP50 = latencyHist.Quantile(0.50)
	res.LatencyP95 = latencyHist.Quantile(0.95)
	res.LatencyP99 = latencyHist.Quantile(0.99)
	res.MeanHops = hops.Value()
	res.TierLatency = TierLatencies{
		Local:  tierLat[int(ccn.ServedLocal)].Value(),
		Peer:   tierLat[int(ccn.ServedPeer)].Value(),
		Origin: tierLat[int(ccn.ServedOrigin)].Value(),
	}
	res.PeerHops = peerHops.Value()
	if len(peerServes) > 0 {
		var total, worst int64
		for _, c := range peerServes {
			total += c
			if c > worst {
				worst = c
			}
		}
		mean := float64(total) / float64(len(peerServes))
		res.PeerLoadImbalance = float64(worst) / mean
	}
	res.InterestTransmissions = net.InterestTransmissions()
	res.DataTransmissions = net.DataTransmissions()
	res.DroppedInterests = net.DroppedInterests()
	res.DroppedData = net.DroppedData()
	res.Retransmissions = net.Retransmissions()
	res.MeanQueueingDelay = net.MeanQueueingDelay()
	res.QueuedPackets = net.QueuedPackets()
	res.FailedRequests = net.FailedRequests()
	res.Availability = avail.Value()
	res.FaultDrops = net.FaultDrops()
	res.ExpiredInterests = net.ExpiredInterests()
	res.RouteRecomputes = net.RouteRecomputes()
	if reportCounts != nil {
		res.Reports = make([]coord.Report, len(routers))
		for i, r := range routers {
			res.Reports[i] = coord.Report{Router: r, Counts: reportCounts[i]}
		}
	}
	if sc.EmitManifest {
		me := ManifestEngine{
			EventsProcessed:  se.Processed(),
			PendingPeak:      se.PendingPeak(),
			Shards:           se.Shards(),
			CrossShardEvents: se.CrossShardEvents(),
		}
		if sc.EngineTelemetry {
			st := se.Stats()
			me.Windows = st.Windows
			me.MeanWindowSpanMs = st.MeanWindowSpanMs
			me.ShardStats = st.PerShard
			me.CrossShardMatrix = st.CrossShardMatrix
		}
		res.Manifest = buildManifest(sc, res, me, net, reg, avail.Snapshot())
	}
	return res, nil
}

// shardArrivalProc is one router's self-rescheduling Poisson arrival
// process pinned to the shard owning the router. Its request identities
// were dealt up front (see assignRequestIDs); k indexes both the next
// identity and the warmup boundary.
type shardArrivalProc struct {
	router topology.NodeID
	shard  *des.Shard
	gen    workload.Generator
	rng    *rand.Rand
	tick   func()
	t      float64
	ids    []int64 // precomputed global request IDs, arrival order
	k      int     // requests issued so far
	nWarm  int     // leading unmeasured requests
}

// assignRequestIDs replays every router's arrival clock (the same
// ArrivalSeed streams the live processes draw from) and deals the
// global request identities 1..total in arrival-time order — the order
// the serial engine's shared counter allocates them in. Exact-time ties
// across routers break by router index, matching the serial engine's
// scheduling order for simultaneous arrivals; between independent
// continuous exponential clocks such ties otherwise have measure zero.
// The result is per-router: ids[i][k] is the identity of router i's
// k-th arrival (warmup included).
func assignRequestIDs(seed int64, nRouters int, interArrival float64, reqsOf func(int) (int, int)) [][]int64 {
	type cursor struct {
		i   int // router index
		rng *rand.Rand
		t   float64 // pending arrival time
		k   int     // arrivals dealt so far
		n   int     // total arrivals
	}
	ids := make([][]int64, nRouters)
	h := make([]*cursor, 0, nRouters)
	less := func(a, b *cursor) bool {
		if a.t != b.t {
			return a.t < b.t
		}
		return a.i < b.i
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < len(h) && less(h[l], h[best]) {
				best = l
			}
			if r < len(h) && less(h[r], h[best]) {
				best = r
			}
			if best == i {
				return
			}
			h[i], h[best] = h[best], h[i]
			i = best
		}
	}
	for i := 0; i < nRouters; i++ {
		nReq, _ := reqsOf(i)
		if nReq == 0 {
			continue
		}
		c := &cursor{i: i, rng: rand.New(rand.NewSource(ArrivalSeed(seed, i))), n: nReq}
		c.t = c.rng.ExpFloat64() * interArrival
		ids[i] = make([]int64, 0, nReq)
		h = append(h, c)
	}
	// Heapify (cursors were appended in router order).
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	var next int64
	for len(h) > 0 {
		c := h[0]
		next++
		ids[c.i] = append(ids[c.i], next)
		c.k++
		if c.k == c.n {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else {
			c.t += c.rng.ExpFloat64() * interArrival
		}
		siftDown(0)
	}
	return ids
}
