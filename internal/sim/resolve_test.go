package sim

import (
	"io"
	"runtime"
	"strings"
	"testing"

	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

// discardTracer builds a tracer that writes nowhere, just to flip the
// scenario into its traced (non-shardable) configuration.
func discardTracer(t *testing.T) *trace.Tracer {
	t.Helper()
	tr, err := trace.New(io.Discard, 1)
	if err != nil {
		t.Fatalf("building tracer: %v", err)
	}
	return tr
}

// TestResolveShardsReasonTable pins the shard-resolution rule at its
// edges: explicit requests clamp to the router count, explicit
// requests on non-shardable scenarios fall back to serial WITH a
// reason, Shards == 1 and the auto rule stay silent.
func TestResolveShardsReasonTable(t *testing.T) {
	n := testScenario().Topology.N()
	if n < 4 {
		t.Fatalf("test topology too small: %d routers", n)
	}
	lossy := func(sc Scenario) Scenario {
		sc.LossRate = 0.05
		sc.RetxTimeout = 300
		return sc
	}
	cases := []struct {
		name       string
		mutate     func(Scenario) Scenario
		wantParts  int
		wantReason string // "" = no fallback; otherwise a required substring
	}{
		{
			name:      "explicit serial",
			mutate:    func(sc Scenario) Scenario { sc.Shards = 1; return sc },
			wantParts: 1,
		},
		{
			name:      "explicit honored",
			mutate:    func(sc Scenario) Scenario { sc.Shards = 4; return sc },
			wantParts: 4,
		},
		{
			name:      "explicit above router count clamps",
			mutate:    func(sc Scenario) Scenario { sc.Shards = n + 10; return sc },
			wantParts: n,
		},
		{
			name:       "explicit on lossy scenario falls back",
			mutate:     func(sc Scenario) Scenario { sc = lossy(sc); sc.Shards = 4; return sc },
			wantParts:  1,
			wantReason: "loss process",
		},
		{
			name: "explicit on traced scenario falls back",
			mutate: func(sc Scenario) Scenario {
				sc.Shards = 2
				sc.Tracer = discardTracer(t)
				return sc
			},
			wantParts:  1,
			wantReason: "event tracing",
		},
		{
			name: "fallback reason joins every blocker",
			mutate: func(sc Scenario) Scenario {
				sc = lossy(sc)
				sc.Shards = 2
				sc.Tracer = discardTracer(t)
				return sc
			},
			wantParts:  1,
			wantReason: "loss process, event tracing",
		},
		{
			name:      "auto below threshold is serial without reason",
			mutate:    func(sc Scenario) Scenario { sc.Shards = 0; return sc },
			wantParts: 1,
		},
		{
			name:      "auto on lossy scenario is silent",
			mutate:    func(sc Scenario) Scenario { sc = lossy(sc); sc.Shards = 0; return sc },
			wantParts: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := tc.mutate(testScenario())
			parts, reason := ResolveShardsReason(sc)
			if parts != tc.wantParts {
				t.Errorf("parts = %d, want %d", parts, tc.wantParts)
			}
			if tc.wantReason == "" && reason != "" {
				t.Errorf("unexpected fallback reason %q", reason)
			}
			if tc.wantReason != "" && !strings.Contains(reason, tc.wantReason) {
				t.Errorf("reason %q does not mention %q", reason, tc.wantReason)
			}
			if got := ResolveShards(sc); got != parts {
				t.Errorf("ResolveShards = %d, ResolveShardsReason = %d", got, parts)
			}
		})
	}
}

// TestResolveShardsAutoThresholdBoundary pins the auto rule exactly at
// the dense-auto threshold: one router below stays serial, at the
// threshold the rule engages (bounded by GOMAXPROCS and the auto cap).
func TestResolveShardsAutoThresholdBoundary(t *testing.T) {
	build := func(n int) Scenario {
		g, err := topology.Ring(n, 1)
		if err != nil {
			t.Fatalf("building %d-ring: %v", n, err)
		}
		sc := testScenario()
		sc.Topology = g
		sc.Shards = 0
		return sc
	}
	below := build(topology.DenseAutoThreshold - 1)
	if parts, reason := ResolveShardsReason(below); parts != 1 || reason != "" {
		t.Errorf("below threshold: got (%d, %q), want (1, \"\")", parts, reason)
	}
	at := build(topology.DenseAutoThreshold)
	parts, reason := ResolveShardsReason(at)
	if reason != "" {
		t.Errorf("at threshold: unexpected fallback reason %q", reason)
	}
	want := runtime.GOMAXPROCS(0)
	if want > 8 {
		want = 8
	}
	if want < 2 {
		want = 1 // single-proc hosts resolve to serial
	}
	if parts != want {
		t.Errorf("at threshold: parts = %d, want %d (GOMAXPROCS-bounded)", parts, want)
	}
}

// TestManifestRecordsShardFallback runs a real (small) simulation with
// an explicitly requested shard count the scenario cannot honor and
// asserts the run manifest surfaces the downgrade; honored and serial
// runs must keep the field empty so pre-existing manifests stay
// byte-identical.
func TestManifestRecordsShardFallback(t *testing.T) {
	sc := testScenario()
	sc.Requests = 2000
	sc.CatalogSize = 1000
	sc.Shards = 4
	sc.LossRate = 0.05
	sc.RetxTimeout = 300
	sc.EmitManifest = true
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("lossy run: %v", err)
	}
	reason := res.Manifest.Engine.ShardFallbackReason
	if !strings.Contains(reason, "loss process") {
		t.Errorf("manifest fallback reason %q does not mention the loss process", reason)
	}
	if res.Manifest.Engine.Shards != 1 {
		t.Errorf("fallback run recorded %d shards, want 1", res.Manifest.Engine.Shards)
	}

	sc = testScenario()
	sc.Requests = 2000
	sc.CatalogSize = 1000
	sc.Shards = 1
	sc.EmitManifest = true
	res, err = Run(sc)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if got := res.Manifest.Engine.ShardFallbackReason; got != "" {
		t.Errorf("serial run recorded fallback reason %q, want empty", got)
	}
}
