// Chaos-scenario execution: wires a compiled fault.ChaosScenario into
// a run. Router and link failures ride the ordinary injector; this
// file adds the coordination-channel timeline — coordinator outages
// gate the failure detector, placements go stale and (past the
// staleness bound) the data plane degrades to autonomous en-route
// caching, heartbeat loss windows drop detector probes, and an
// optional checkpoint is saved at each coordinator crash and restored
// at the restart. Everything is scheduled on the discrete-event engine
// up front, so chaos runs replay deterministically.
package sim

import (
	"fmt"
	"math/rand"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/ccn"
	"ccncoord/internal/coord"
	"ccncoord/internal/des"
	"ccncoord/internal/fault"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

// chaosRuntime accumulates the chaos scenario's coordination outcomes
// over a run.
type chaosRuntime struct {
	// Outcome accumulators.
	outages       int     // coordinator outage windows begun
	coordDowntime float64 // total coordinator downtime (ms)
	degradedMs    float64 // total time in degraded mode (ms)
	moves         int64   // overlay entries flushed at re-convergence
	ttrSum        float64 // summed crash-to-reconverge times (ms)
	ttrN          int     // reconvergences measured
	degTotal      int64   // measured requests completed while degraded
	degOrigin     int64   // of those, served by the origin

	// Live state.
	down        bool    // a coordinator outage is active
	downAt      float64 // when it began
	degEnterAt  float64 // when degraded mode began (valid while degraded)
	awaitDownAt float64 // downAt of the outage awaiting late repairs
	await       map[topology.NodeID]bool
}

// chaosEnv is the run state installChaos wires into.
type chaosEnv struct {
	eng      *des.Engine
	net      *ccn.Network
	det      *coord.Detector // nil outside the coordinated policy
	inj      *fault.Injector
	coordAsg *coord.Assignment
	localSet []catalog.ID
	routers  []topology.NodeID
	sc       Scenario
	chaos    *fault.CompiledChaos
	fail     func(error)
}

// finish closes windows still open when the run ends.
func (cr *chaosRuntime) finish(now float64, net *ccn.Network) {
	if net.Degraded() {
		cr.degradedMs += now - cr.degEnterAt
	}
	if cr.down {
		cr.coordDowntime += now - cr.downAt
	}
}

// installChaos schedules the scenario's coordination timeline on the
// engine and hooks the failure detector. Router and link events are
// already merged into the injector's schedule by the caller.
func installChaos(env chaosEnv) (*chaosRuntime, error) {
	cr := &chaosRuntime{}
	bound := env.sc.StalenessBound
	if bound == 0 {
		bound = DefaultStalenessBound
	}

	// Coordination-message loss: heartbeats inside a window are lost
	// with the window's rate (one seeded stream for the whole run), and
	// a delay at or past the heartbeat interval loses them all.
	if len(env.chaos.Loss) > 0 {
		if env.det == nil {
			return nil, fmt.Errorf("sim: chaos message loss requires the coordinated policy's failure detector")
		}
		hbInterval := env.sc.HeartbeatInterval
		if hbInterval == 0 {
			hbInterval = DefaultHeartbeatInterval
		}
		lossRNG := rand.New(rand.NewSource(env.chaos.Seed + 0x10557))
		windows := env.chaos.Loss
		env.det.Drop = func(r topology.NodeID, at float64) bool {
			for _, w := range windows {
				if at < w.From || at >= w.To {
					continue
				}
				if w.DelayMs >= hbInterval {
					return true
				}
				if w.Rate > 0 && lossRNG.Float64() < w.Rate {
					return true
				}
			}
			return false
		}
	}

	if len(env.chaos.Coordinator) == 0 {
		return cr, nil
	}
	if env.det == nil || env.coordAsg == nil {
		return nil, fmt.Errorf("sim: chaos coordinator outages require the coordinated policy")
	}

	// A dead coordinator runs no heartbeat rounds: no probes, no
	// misses, no declarations, no repairs.
	env.det.Gate = func() bool { return !cr.down }

	// Routers that crash during an outage go undetected until the
	// coordinator returns; re-convergence for that outage completes
	// only when the detector has caught up and repaired the last of
	// them. Chain onto the repair callback to observe that moment.
	prevDown := env.det.OnDown
	env.det.OnDown = func(dead topology.NodeID, at float64, survivors []topology.NodeID) {
		if prevDown != nil {
			prevDown(dead, at, survivors)
		}
		if cr.await != nil {
			delete(cr.await, dead)
			if len(cr.await) == 0 {
				cr.await = nil
				cr.ttrSum += at - cr.awaitDownAt
				cr.ttrN++
			}
		}
	}

	emit := func(detail string, n int64) {
		if env.sc.Tracer != nil {
			env.sc.Tracer.Emit(trace.Event{T: env.eng.Now(), Kind: trace.KindMode, Router: -1, N: n, Detail: detail})
		}
	}

	coordDown := func() {
		if cr.down {
			return
		}
		cr.down = true
		cr.downAt = env.eng.Now()
		cr.outages++
		if env.sc.CheckpointPath != "" {
			// Checkpoint at the crash instant: the epoch is the outage
			// index, so a restart can refuse a checkpoint from a
			// different crash.
			cp := &coord.Checkpoint{
				Epoch:     int64(cr.outages - 1),
				Placement: &coord.Placement{LocalSet: env.localSet, Assignment: env.coordAsg},
			}
			st := env.det.State()
			cp.Detector = &st
			if err := coord.SaveCheckpoint(env.sc.CheckpointPath, cp); err != nil {
				env.fail(fmt.Errorf("sim: saving coordinator checkpoint: %w", err))
				return
			}
		}
		env.net.SetPlacementsStale(true)
		emit("coord-down", int64(cr.outages))
	}

	coordUp := func() {
		if !cr.down {
			return
		}
		now := env.eng.Now()
		if env.sc.CheckpointPath != "" {
			// Restart from the checkpoint: adopt the checkpointed
			// placement into the live assignment (the data plane holds
			// its pointer as the directory), restore detector progress,
			// and reinstall the coordinated store partitions to match.
			cp, err := coord.LoadCheckpoint(env.sc.CheckpointPath)
			if err != nil {
				env.fail(fmt.Errorf("sim: restoring coordinator checkpoint: %w", err))
				return
			}
			if cp.Epoch != int64(cr.outages-1) {
				env.fail(fmt.Errorf("sim: checkpoint epoch %d does not match outage %d", cp.Epoch, cr.outages-1))
				return
			}
			if err := env.coordAsg.Adopt(cp.Placement.Assignment); err != nil {
				env.fail(fmt.Errorf("sim: adopting checkpointed placement: %w", err))
				return
			}
			if cp.Detector != nil {
				if err := env.det.RestoreState(*cp.Detector); err != nil {
					env.fail(fmt.Errorf("sim: restoring detector state: %w", err))
					return
				}
			}
			for _, r := range env.routers {
				if env.det.Declared(r) {
					continue
				}
				contents := env.coordAsg.Contents(r)
				if len(contents) == 0 {
					continue
				}
				st, err := env.net.Store(r)
				if err != nil {
					env.fail(fmt.Errorf("sim: restoring store %d: %w", r, err))
					return
				}
				part, ok := st.(*cache.Partitioned)
				if !ok {
					continue
				}
				restored, err := cache.NewStatic(contents)
				if err != nil {
					env.fail(fmt.Errorf("sim: restoring store %d: %w", r, err))
					return
				}
				part.Coordinated = restored
			}
		}
		if env.net.Degraded() {
			flushed := env.net.ExitDegraded()
			cr.moves += int64(flushed)
			cr.degradedMs += now - cr.degEnterAt
		}
		env.net.SetPlacementsStale(false)
		cr.down = false
		cr.coordDowntime += now - cr.downAt
		// Time-to-reconverge: the restart completes it unless routers
		// crashed undetected during the outage — then the revived
		// detector still has to declare and repair them.
		var pending map[topology.NodeID]bool
		for _, r := range env.routers {
			if !env.det.Declared(r) && env.inj != nil && !env.inj.RouterAlive(r) {
				if pending == nil {
					pending = make(map[topology.NodeID]bool)
				}
				pending[r] = true
			}
		}
		if pending == nil {
			cr.ttrSum += now - cr.downAt
			cr.ttrN++
		} else {
			cr.awaitDownAt = cr.downAt
			cr.await = pending
		}
		emit("coord-up", int64(cr.outages))
	}

	for i, w := range env.chaos.Coordinator {
		idx := i + 1 // cr.outages while this window is the active one
		if err := env.eng.At(w.Down, coordDown); err != nil {
			return nil, fmt.Errorf("sim: scheduling coordinator crash: %w", err)
		}
		degradeAt := w.Down + bound
		if err := env.eng.At(degradeAt, func() {
			// Degrade only if this window is still the active outage:
			// it may have healed under the bound, and a later window
			// must not inherit this window's degrade tick.
			if !cr.down || cr.outages != idx || env.net.Degraded() {
				return
			}
			if err := env.net.EnterDegraded(); err != nil {
				env.fail(fmt.Errorf("sim: entering degraded mode: %w", err))
				return
			}
			cr.degEnterAt = env.eng.Now()
		}); err != nil {
			return nil, fmt.Errorf("sim: scheduling degraded fallback: %w", err)
		}
		if w.Up > 0 {
			if err := env.eng.At(w.Up, coordUp); err != nil {
				return nil, fmt.Errorf("sim: scheduling coordinator restart: %w", err)
			}
		}
	}
	return cr, nil
}
