package sim

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ccncoord/internal/coord"
	"ccncoord/internal/fault"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
	"ccncoord/internal/workload"
)

// chaosScenario is a coordinated run long enough (~1000 virtual ms)
// to span every preset's chaos timeline.
func chaosScenario(t *testing.T, preset string) Scenario {
	t.Helper()
	chaos, err := fault.ChaosPreset(preset)
	if err != nil {
		t.Fatal(err)
	}
	if chaos.FlashCrowd != nil {
		chaos.FlashCrowd.Rank = 50 // presets target catalog sizes >= 5000
	}
	return Scenario{
		Topology:    mesh4(t),
		CatalogSize: 100,
		ZipfS:       0.8,
		Capacity:    10,
		Coordinated: 5,
		Policy:      PolicyCoordinated,
		Requests:    4000,
		Seed:        42,

		AccessLatency: 1,
		OriginLatency: 50,
		OriginGateway: 0,
		RetxTimeout:   150,

		Chaos: chaos,
	}
}

func TestChaosScenarioValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"coordination chaos on non-coordinated policy", func(s *Scenario) {
			s.Policy = PolicyLRU
			s.Coordinated = 0
		}, "coordinated"},
		{"checkpoint without chaos", func(s *Scenario) {
			s.Chaos = nil
			s.CheckpointPath = "x.json"
		}, "checkpoint"},
		{"checkpoint without coordinator outages", func(s *Scenario) {
			chaos, err := fault.ChaosPreset("partition")
			if err != nil {
				t.Fatal(err)
			}
			s.Chaos = chaos
			s.CheckpointPath = "x.json"
		}, "checkpoint"},
		{"negative staleness bound", func(s *Scenario) { s.StalenessBound = -1 }, "staleness"},
		{"flash crowd with workload factory", func(s *Scenario) {
			chaos, err := fault.ChaosPreset("flash-crowd")
			if err != nil {
				t.Fatal(err)
			}
			s.Chaos = chaos
			s.WorkloadFactory = func(router topology.NodeID) (workload.Generator, error) {
				return workload.NewZipf(0.8, 100, 1)
			}
		}, "flash crowd"},
		{"chaos targeting unknown router", func(s *Scenario) {
			s.Chaos = &fault.ChaosScenario{
				Name:    "bad",
				Routers: []fault.RouterOutage{{At: 10, Router: 99}},
			}
		}, "unknown router"},
	}
	for _, tc := range cases {
		sc := chaosScenario(t, "coord-crash")
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestChaosRunsAreDeterministic(t *testing.T) {
	for _, preset := range []string{"coord-crash", "cascade", "lossy-coordination", "flash-crowd"} {
		t.Run(preset, func(t *testing.T) {
			a, err := Run(chaosScenario(t, preset))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(chaosScenario(t, preset))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("identical chaos scenarios produced different results:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestCheckpointRestoreEquivalence is the tentpole acceptance check: a
// run whose coordinator checkpoints at crash and restores at restart
// must be byte-identical (manifest and all) to the same run carrying
// its coordinator state through the outage in memory.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	emit := func(checkpoint string) ([]byte, Result) {
		sc := chaosScenario(t, "coord-crash")
		sc.CheckpointPath = checkpoint
		sc.EmitManifest = true
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Manifest.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		res.Manifest = nil // compare manifests as bytes, the rest as values
		return buf.Bytes(), res
	}
	plainBytes, plain := emit("")
	path := filepath.Join(t.TempDir(), "coordinator.ckpt")
	ckptBytes, ckpt := emit(path)
	if !bytes.Equal(plainBytes, ckptBytes) {
		t.Error("checkpointed run's manifest differs from the uninterrupted run's")
	}
	if !reflect.DeepEqual(plain, ckpt) {
		t.Errorf("checkpointed run's result differs:\n%+v\n%+v", plain, ckpt)
	}
	// The checkpoint file itself is a valid epoch-0 checkpoint holding
	// the live placement.
	cp, err := coord.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("run left an unreadable checkpoint: %v", err)
	}
	if cp.Epoch != 0 {
		t.Errorf("checkpoint epoch %d, want 0 (first outage)", cp.Epoch)
	}
	if cp.Placement == nil || cp.Placement.Assignment.Size() == 0 {
		t.Error("checkpoint carries no placement")
	}
	if cp.Detector == nil {
		t.Error("checkpoint carries no detector state")
	}
}

func TestChaosBlipStaysNonDegraded(t *testing.T) {
	// coord-blip's outage (150-350) is shorter than the default
	// staleness bound (300), so the plane runs on stale placements but
	// never degrades.
	res, err := Run(chaosScenario(t, "coord-blip"))
	if err != nil {
		t.Fatal(err)
	}
	if res.CoordOutages != 1 {
		t.Errorf("CoordOutages = %d, want 1", res.CoordOutages)
	}
	if res.CoordDowntime != 200 {
		t.Errorf("CoordDowntime = %v, want 200", res.CoordDowntime)
	}
	if res.DegradedTime != 0 || res.DegradedServes != 0 || res.DegradedRequests != 0 {
		t.Errorf("blip degraded the plane: time=%v serves=%d requests=%d",
			res.DegradedTime, res.DegradedServes, res.DegradedRequests)
	}
	if res.StalePlacementHits == 0 {
		t.Error("no stale-placement forwards recorded during the outage")
	}
	if res.ReconvergeMoves != 0 {
		t.Errorf("ReconvergeMoves = %d, want 0 (never degraded, nothing to flush)", res.ReconvergeMoves)
	}
	if res.MeanTimeToReconverge != 200 {
		t.Errorf("MeanTimeToReconverge = %v, want 200 (the outage span)", res.MeanTimeToReconverge)
	}
}

func TestChaosCrashDegradesAndReconverges(t *testing.T) {
	var buf bytes.Buffer
	tr, err := trace.New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosScenario(t, "coord-crash")
	sc.Tracer = tr
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if res.CoordOutages != 1 || res.CoordDowntime != 750 {
		t.Errorf("outage accounting: %d outages, %v ms down; want 1, 750", res.CoordOutages, res.CoordDowntime)
	}
	// The staleness bound expired at 150+300=450; degraded until 900.
	if res.DegradedTime != 450 {
		t.Errorf("DegradedTime = %v, want 450", res.DegradedTime)
	}
	if res.DegradedRequests == 0 {
		t.Error("no requests measured while degraded")
	}
	if res.DegradedServes == 0 {
		t.Error("the degraded overlays never served anything")
	}
	if res.ReconvergeMoves == 0 {
		t.Error("re-convergence flushed no overlay entries")
	}
	if res.MeanTimeToReconverge != 750 {
		t.Errorf("MeanTimeToReconverge = %v, want 750 (no crashed routers pending)", res.MeanTimeToReconverge)
	}
	if res.FailedRequests != 0 {
		t.Errorf("%d requests failed during a coordination-only outage", res.FailedRequests)
	}

	// The trace narrates the transitions in causal order.
	var modes []trace.Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev trace.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == trace.KindMode {
			modes = append(modes, ev)
		}
	}
	var details []string
	for _, ev := range modes {
		details = append(details, ev.Detail)
	}
	want := []string{"coord-down", "degraded-enter", "degraded-exit", "coord-up"}
	if !reflect.DeepEqual(details, want) {
		t.Fatalf("mode transitions %v, want %v", details, want)
	}
	times := []float64{150, 450, 900, 900}
	for i, ev := range modes {
		if ev.T != times[i] {
			t.Errorf("%s at %v, want %v", ev.Detail, ev.T, times[i])
		}
	}
}

func TestChaosManifestSection(t *testing.T) {
	sc := chaosScenario(t, "coord-crash")
	sc.EmitManifest = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Manifest
	if m == nil || m.Chaos == nil {
		t.Fatal("chaos run emitted no manifest chaos section")
	}
	c := m.Chaos
	if c.Scenario != "coord-crash" {
		t.Errorf("scenario %q, want coord-crash", c.Scenario)
	}
	if c.CoordOutages != res.CoordOutages || c.CoordDowntimeMs != res.CoordDowntime ||
		c.DegradedMs != res.DegradedTime || c.DegradedServes != res.DegradedServes ||
		c.DegradedRequests != res.DegradedRequests || c.StalePlacementHits != res.StalePlacementHits ||
		c.ReconvergeMoves != res.ReconvergeMoves || c.MeanTimeToReconvergeMs != res.MeanTimeToReconverge {
		t.Errorf("manifest chaos section diverges from the result:\n%+v\nvs %+v", c, res)
	}
	// Non-chaos runs must not grow the section (manifest compatibility).
	plain := chaosScenario(t, "coord-crash")
	plain.Chaos = nil
	plain.EmitManifest = true
	base, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if base.Manifest.Chaos != nil {
		t.Error("non-chaos run emitted a manifest chaos section")
	}
	var buf bytes.Buffer
	if err := base.Manifest.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"chaos"`) {
		t.Error("non-chaos manifest JSON mentions chaos")
	}
}
