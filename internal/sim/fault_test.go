package sim

import (
	"reflect"
	"testing"

	"ccncoord/internal/ccn"
	"ccncoord/internal/fault"
	"ccncoord/internal/topology"
)

// mesh4 builds a 4-router full mesh (every pair connected, latency 5),
// so the network stays connected through any single router crash.
func mesh4(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New("mesh4")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.MustAddEdge(topology.NodeID(a), topology.NodeID(b), 5)
		}
	}
	return g
}

func TestFaultScenarioValidation(t *testing.T) {
	base := Scenario{
		Topology: mesh4(t), CatalogSize: 100, ZipfS: 0.8,
		Capacity: 10, Coordinated: 5, Policy: PolicyCoordinated,
		Requests: 10, Seed: 1,
		AccessLatency: 1, OriginLatency: 50, OriginGateway: 0,
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"negative MTBF", func(s *Scenario) { s.MTBF = -1; s.MTTR = 1; s.RetxTimeout = 100 }},
		{"negative MTTR", func(s *Scenario) { s.MTBF = 1; s.MTTR = -1; s.RetxTimeout = 100 }},
		{"MTBF without MTTR", func(s *Scenario) { s.MTBF = 100; s.RetxTimeout = 100 }},
		{"faults without retx timeout", func(s *Scenario) { s.MTBF = 100; s.MTTR = 50 }},
		{"negative heartbeat interval", func(s *Scenario) { s.HeartbeatInterval = -1 }},
		{"negative heartbeat misses", func(s *Scenario) { s.HeartbeatMisses = -1 }},
		{"script targets unknown router", func(s *Scenario) {
			s.RetxTimeout = 100
			s.FaultScript = []fault.Event{{At: 10, Kind: fault.RouterDown, Node: 99}}
		}},
	}
	for _, tc := range cases {
		sc := base
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base scenario invalid: %v", err)
	}
}

// TestCrashedStripeOwnerFailsOverAndRepairs is the acceptance scenario:
// crash a stripe owner mid-run under the coordinated policy and verify
// graceful degradation (affected interests fall back to the origin
// within the retry budget, every request completes, no hangs), that the
// coordinator detects the crash and reassigns the dead stripe, that
// post-repair hit ratios recover, and that the detection/repair message
// counts are reported.
func TestCrashedStripeOwnerFailsOverAndRepairs(t *testing.T) {
	const (
		crashAt    = 300.0
		dead       = topology.NodeID(1)
		hbInterval = 50.0
		hbMisses   = 2
	)
	var events []ccn.RequestResult
	sc := Scenario{
		Topology:    mesh4(t),
		CatalogSize: 100,
		ZipfS:       0.8,
		Capacity:    10,
		Coordinated: 5,
		Policy:      PolicyCoordinated,
		Requests:    4000,
		Seed:        42,

		AccessLatency: 1,
		OriginLatency: 50,
		OriginGateway: 0,
		RetxTimeout:   150,

		HeartbeatInterval: hbInterval,
		HeartbeatMisses:   hbMisses,
		FaultScript:       []fault.Event{{At: crashAt, Kind: fault.RouterDown, Node: dead}},
		Observer:          func(r ccn.RequestResult) { events = append(events, r) },
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	// No hangs: every scheduled request completed (served or failed).
	if res.Requests != sc.Requests || len(events) != sc.Requests {
		t.Fatalf("completed %d of %d requests (%d observed)", res.Requests, sc.Requests, len(events))
	}

	// Detection and repair happened exactly once, for the right router,
	// within a few heartbeat rounds of the crash.
	if len(res.Repairs) != 1 {
		t.Fatalf("%d repairs, want 1: %+v", len(res.Repairs), res.Repairs)
	}
	rep := res.Repairs[0]
	if rep.Router != dead {
		t.Errorf("repaired router %d, want %d", rep.Router, dead)
	}
	if rep.CrashedAt != crashAt {
		t.Errorf("crash recorded at %v, want %v", rep.CrashedAt, crashAt)
	}
	if rep.DetectedAt <= crashAt || rep.DetectedAt > crashAt+float64(hbMisses+1)*hbInterval {
		t.Errorf("detected at %v, want within (%v, %v]", rep.DetectedAt, crashAt, crashAt+float64(hbMisses+1)*hbInterval)
	}
	// The dead router owned a quarter of the 20-content striped band.
	if rep.Moved != 5 {
		t.Errorf("moved %d contents, want 5", rep.Moved)
	}
	if rep.Messages != 10 || res.RepairMessages != 10 {
		t.Errorf("repair messages %d (run total %d), want 10 each", rep.Messages, res.RepairMessages)
	}
	if res.HeartbeatMessages == 0 {
		t.Error("no heartbeat messages counted")
	}
	if got := rep.DetectedAt - rep.CrashedAt; res.MeanTimeToRepair != got {
		t.Errorf("mean time to repair %v, want %v", res.MeanTimeToRepair, got)
	}
	if res.RouterDowntime == 0 {
		t.Error("no router downtime recorded despite a permanent crash")
	}

	// Graceful degradation: clients of the crashed router fail, but the
	// rest of the network keeps serving.
	if res.FailedRequests == 0 {
		t.Error("no failed requests despite a permanently crashed first-hop router")
	}
	if res.Availability >= 1 || res.Availability < 0.5 {
		t.Errorf("availability %v, want in [0.5, 1)", res.Availability)
	}

	// Windowed behavior at the surviving routers: compare the pre-crash
	// steady state, the outage window (crash -> repair), and the
	// post-repair tail.
	var preHit, preTotal, outOrigin, outTotal, postHit, postTotal, postFailed float64
	for _, ev := range events {
		if ev.Router == dead {
			continue
		}
		switch {
		case ev.IssuedAt < crashAt:
			preTotal++
			if !ev.Failed && ev.ServedBy != ccn.ServedOrigin {
				preHit++
			}
		case ev.IssuedAt < rep.DetectedAt:
			if !ev.Failed {
				outTotal++
				if ev.ServedBy == ccn.ServedOrigin {
					outOrigin++
				}
			}
		case ev.IssuedAt > rep.DetectedAt+100:
			postTotal++
			if ev.Failed {
				postFailed++
			} else if ev.ServedBy != ccn.ServedOrigin {
				postHit++
			}
		}
	}
	if preTotal == 0 || outTotal == 0 || postTotal == 0 {
		t.Fatalf("empty analysis window: pre=%v out=%v post=%v", preTotal, outTotal, postTotal)
	}
	// During the outage the dead stripe degrades to the origin, so the
	// origin share among survivors exceeds the steady state.
	steadyOrigin := 1 - preHit/preTotal
	if outOrigin/outTotal <= steadyOrigin {
		t.Errorf("outage origin share %v not above steady %v", outOrigin/outTotal, steadyOrigin)
	}
	if res.OutageOriginLoad == 0 {
		t.Error("no outage origin load reported despite a crash window")
	}
	// After the repair the survivors' hit ratio recovers to within
	// tolerance of the pre-crash level, and survivors stop failing.
	if postFailed != 0 {
		t.Errorf("%d survivor requests failed after the repair", int(postFailed))
	}
	if pre, post := preHit/preTotal, postHit/postTotal; post < pre-0.1 {
		t.Errorf("post-repair hit ratio %v fell more than 0.1 below pre-crash %v", post, pre)
	}
}

// TestFaultRunsAreDeterministic: identical scenario + fault seeds must
// produce bit-identical request-result streams, repair logs, and
// aggregate results.
func TestFaultRunsAreDeterministic(t *testing.T) {
	run := func() (Result, []ccn.RequestResult) {
		var events []ccn.RequestResult
		sc := Scenario{
			Topology:    mesh4(t),
			CatalogSize: 100,
			ZipfS:       0.8,
			Capacity:    10,
			Coordinated: 5,
			Policy:      PolicyCoordinated,
			Requests:    2000,
			Seed:        7,

			AccessLatency: 1,
			OriginLatency: 50,
			OriginGateway: 0,
			RetxTimeout:   150,

			MTBF:      400,
			MTTR:      150,
			FaultSeed: 9,
			Observer:  func(r ccn.RequestResult) { events = append(events, r) },
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res, events
	}
	res1, ev1 := run()
	res2, ev2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Error("request-result streams differ between identical runs")
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("results differ between identical runs:\n%+v\n%+v", res1, res2)
	}
	// The stochastic process actually produced faults (otherwise this
	// test pins down nothing).
	if res1.RouterDowntime == 0 {
		t.Error("stochastic fault process produced no downtime; scenario inert")
	}
}
