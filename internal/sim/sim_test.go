package sim

import (
	"math"
	"reflect"
	"testing"

	"ccncoord/internal/model"
	"ccncoord/internal/topology"
)

// testScenario returns a moderate coordinated scenario on US-A.
func testScenario() Scenario {
	return Scenario{
		Topology:      topology.USA(),
		CatalogSize:   10000,
		ZipfS:         0.8,
		Capacity:      100,
		Coordinated:   50,
		Policy:        PolicyCoordinated,
		Requests:      60000,
		Seed:          1,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
}

func TestScenarioValidate(t *testing.T) {
	good := testScenario()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	mutations := map[string]func(*Scenario){
		"nil topology":      func(s *Scenario) { s.Topology = nil },
		"empty catalog":     func(s *Scenario) { s.CatalogSize = 0 },
		"zero s":            func(s *Scenario) { s.ZipfS = 0 },
		"negative capacity": func(s *Scenario) { s.Capacity = -1 },
		"coordinated > cap": func(s *Scenario) { s.Coordinated = 101 },
		"zero requests":     func(s *Scenario) { s.Requests = 0 },
		"negative warmup":   func(s *Scenario) { s.Warmup = -1 },
		"negative access":   func(s *Scenario) { s.AccessLatency = -1 },
		"zero origin":       func(s *Scenario) { s.OriginLatency = 0 },
		"gateway overflow":  func(s *Scenario) { s.OriginGateway = 99 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			sc := testScenario()
			mutate(&sc)
			if err := sc.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

// TestCoordinatedMatchesDiscreteModel is the central integration test:
// the packet-level simulator's origin load must match the analytical
// model's 1 - F(c + (n-1)x) within sampling noise, and the tier split
// must match up to the model's known approximation (the requesting
// router's own coordinated slice counts as local in reality but as peer
// in the model, shifting ~band/n of mass between the two tiers).
func TestCoordinatedMatchesDiscreteModel(t *testing.T) {
	sc := testScenario()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.Config{
		S: sc.ZipfS, N: float64(sc.CatalogSize), C: float64(sc.Capacity),
		Routers: sc.Topology.N(),
		Lat:     model.Latency{D0: 1, D1: 2, D2: 3}, Alpha: 1,
	}
	d, err := model.NewDiscrete(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, peer, origin := d.HitRatios(sc.Coordinated)
	if math.Abs(res.OriginLoad-origin) > 0.01 {
		t.Errorf("origin load: sim %v vs model %v", res.OriginLoad, origin)
	}
	slice := peer / float64(sc.Topology.N())
	if math.Abs(res.LocalHit-(local+slice)) > 0.012 {
		t.Errorf("local hit: sim %v vs model %v (+own slice %v)", res.LocalHit, local+slice, slice)
	}
	if math.Abs(res.PeerHit-(peer-slice)) > 0.012 {
		t.Errorf("peer hit: sim %v vs model %v", res.PeerHit, peer-slice)
	}
}

// TestNonCoordinatedMatchesModel checks the x = 0 baseline: local hit
// ratio F(c), everything else from the origin, zero peer traffic.
func TestNonCoordinatedMatchesModel(t *testing.T) {
	sc := testScenario()
	sc.Policy = PolicyNonCoordinated
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.Config{
		S: sc.ZipfS, N: float64(sc.CatalogSize), C: float64(sc.Capacity),
		Routers: sc.Topology.N(),
		Lat:     model.Latency{D0: 1, D1: 2, D2: 3}, Alpha: 1,
	}
	d, err := model.NewDiscrete(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, _, origin := d.HitRatios(0)
	if math.Abs(res.LocalHit-local) > 0.01 {
		t.Errorf("local: sim %v vs model %v", res.LocalHit, local)
	}
	if math.Abs(res.OriginLoad-origin) > 0.01 {
		t.Errorf("origin: sim %v vs model %v", res.OriginLoad, origin)
	}
	if res.PeerHit != 0 {
		t.Errorf("peer hit %v without coordination", res.PeerHit)
	}
	if res.CoordMessages != 0 {
		t.Errorf("coordination messages %d without coordination", res.CoordMessages)
	}
}

// TestCoordinationReducesOriginLoad is the paper's headline behavioral
// claim, measured on the executable system.
func TestCoordinationReducesOriginLoad(t *testing.T) {
	sc := testScenario()
	coordRes, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy = PolicyNonCoordinated
	nonCoord, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if coordRes.OriginLoad >= nonCoord.OriginLoad {
		t.Errorf("coordination did not reduce origin load: %v vs %v",
			coordRes.OriginLoad, nonCoord.OriginLoad)
	}
	// Measured G_O must be positive and sizable for these parameters.
	gO := 1 - coordRes.OriginLoad/nonCoord.OriginLoad
	if gO < 0.2 {
		t.Errorf("measured origin load reduction %v suspiciously small", gO)
	}
}

func TestCoordMessagesMatchModelCost(t *testing.T) {
	sc := testScenario()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The protocol exchanges 2*n*x content-state messages, the measured
	// counterpart of W(x) = w*n*x (up) plus dissemination (down).
	want := 2 * int64(sc.Topology.N()) * sc.Coordinated
	if res.CoordMessages != want {
		t.Errorf("CoordMessages = %d, want %d", res.CoordMessages, want)
	}
	if res.CoordConvergence <= 0 {
		t.Errorf("CoordConvergence = %v, want > 0 (US-A has a measured matrix)", res.CoordConvergence)
	}
}

func TestDynamicPoliciesWarmUp(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyLFU, PolicySLRU, PolicyTwoQ, PolicyProbCache} {
		t.Run(p.String(), func(t *testing.T) {
			sc := testScenario()
			sc.Policy = p
			sc.Warmup = 40000
			sc.Requests = 20000
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.LocalHit <= 0 {
				t.Errorf("%v: no local hits after warmup", p)
			}
			if res.OriginLoad >= 1 {
				t.Errorf("%v: origin load %v", p, res.OriginLoad)
			}
			// Dynamic LCE caching also produces opportunistic peer hits.
			if res.OriginLoad+res.LocalHit+res.PeerHit > 1.0001 ||
				res.OriginLoad+res.LocalHit+res.PeerHit < 0.9999 {
				t.Errorf("%v: tier fractions sum to %v", p, res.OriginLoad+res.LocalHit+res.PeerHit)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := testScenario()
	sc.Requests = 5000
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same seed produced different results:\n%+v\n%+v", r1, r2)
	}
}

func TestGatewayOriginRaisesHops(t *testing.T) {
	sc := testScenario()
	sc.Policy = PolicyNonCoordinated
	sc.Requests = 20000
	uniform, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.OriginGateway = 0
	gateway, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Routing misses through a single gateway adds intradomain hops.
	if gateway.MeanHops <= uniform.MeanHops {
		t.Errorf("gateway hops %v should exceed uniform hops %v",
			gateway.MeanHops, uniform.MeanHops)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyNonCoordinated.String() != "non-coordinated" ||
		PolicyCoordinated.String() != "coordinated" ||
		PolicyLRU.String() != "lru" || PolicyLFU.String() != "lfu" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still format")
	}
}

func TestMotivatingExampleMatchesTableI(t *testing.T) {
	cmp, err := MotivatingExample(50)
	if err != nil {
		t.Fatal(err)
	}
	nc, c := cmp.NonCoordinated, cmp.Coordinated
	if math.Abs(nc.OriginLoad-1.0/3) > 1e-9 {
		t.Errorf("non-coordinated origin load = %v, want 1/3", nc.OriginLoad)
	}
	if math.Abs(nc.MeanHops-2.0/3) > 1e-9 {
		t.Errorf("non-coordinated hops = %v, want 2/3", nc.MeanHops)
	}
	if nc.CoordMessages != 0 {
		t.Errorf("non-coordinated messages = %d, want 0", nc.CoordMessages)
	}
	if c.OriginLoad != 0 {
		t.Errorf("coordinated origin load = %v, want 0", c.OriginLoad)
	}
	if math.Abs(c.MeanHops-0.5) > 1e-9 {
		t.Errorf("coordinated hops = %v, want 0.5", c.MeanHops)
	}
	if c.CoordMessages != 1 {
		t.Errorf("coordinated messages = %d, want 1", c.CoordMessages)
	}
}

func TestMotivatingExampleValidation(t *testing.T) {
	if _, err := MotivatingExample(0); err == nil {
		t.Error("zero cycles should fail")
	}
}

func BenchmarkCoordinatedRun(b *testing.B) {
	sc := testScenario()
	sc.Requests = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}
