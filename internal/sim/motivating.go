package sim

import (
	"fmt"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/ccn"
	"ccncoord/internal/coord"
	"ccncoord/internal/des"
	"ccncoord/internal/metrics"
	"ccncoord/internal/topology"
	"ccncoord/internal/workload"
)

// This file reproduces the paper's Section II motivating example
// (Figure 1 / Table I) behaviorally on the packet-level data plane: three
// routers R0, R1, R2 where only R1 and R2 can store a single content;
// an origin server O behind R0 serving contents a and b; and two
// identical client flows {a, a, b} entering at R1 and R2.

// MotivatingMetrics are Table I's three comparison metrics for one
// strategy.
type MotivatingMetrics struct {
	OriginLoad float64 // fraction of requests served by O
	MeanHops   float64 // mean links traversed among R0, R1, R2, O
	// CoordMessages is the minimum number of messages exchanged among
	// storing routers to agree on the placement (0 without
	// coordination; the paper argues at least 1 with it).
	CoordMessages int64
}

// MotivatingComparison holds Table I's two columns.
type MotivatingComparison struct {
	NonCoordinated MotivatingMetrics
	Coordinated    MotivatingMetrics
}

// contentA and contentB are the two objects of the example.
const (
	contentA catalog.ID = 1
	contentB catalog.ID = 2
)

// MotivatingExample runs both strategies of the Section II example for
// the given number of request cycles (each cycle is one {a,a,b} flow at
// each of R1 and R2) and returns the measured Table I metrics.
func MotivatingExample(cycles int) (MotivatingComparison, error) {
	if cycles < 1 {
		return MotivatingComparison{}, fmt.Errorf("sim: need at least one cycle, got %d", cycles)
	}
	nonCoord, err := runMotivating(cycles, false)
	if err != nil {
		return MotivatingComparison{}, err
	}
	coordRes, err := runMotivating(cycles, true)
	if err != nil {
		return MotivatingComparison{}, err
	}
	return MotivatingComparison{NonCoordinated: nonCoord, Coordinated: coordRes}, nil
}

// runMotivating executes one strategy of the example.
func runMotivating(cycles int, coordinated bool) (MotivatingMetrics, error) {
	// Figure 1's topology: a triangle of routers; O attaches behind R0.
	g := topology.New("motivating")
	r0 := g.AddNode("R0", 0, 0)
	r1 := g.AddNode("R1", 0, 0)
	r2 := g.AddNode("R2", 0, 0)
	const linkMs = 5.0
	for _, pair := range [][2]topology.NodeID{{r0, r1}, {r0, r2}, {r1, r2}} {
		if err := g.AddEdge(pair[0], pair[1], linkMs); err != nil {
			return MotivatingMetrics{}, fmt.Errorf("sim: motivating topology: %w", err)
		}
	}
	cat, err := catalog.New(2, "/motivating")
	if err != nil {
		return MotivatingMetrics{}, err
	}

	// Steady-state stores per Section II: non-coordinated lets both R1
	// and R2 keep the more popular a; coordinated splits a and b.
	var directory ccn.Directory
	var messages int64
	provision := map[topology.NodeID][]catalog.ID{
		r0: nil, // R0 has no storage capacity
		r1: {contentA},
		r2: {contentA},
	}
	if coordinated {
		provision[r2] = []catalog.ID{contentB}
		asg, err := coord.StripeByRank([]topology.NodeID{r1, r2}, []catalog.ID{contentA, contentB}, 1)
		if err != nil {
			return MotivatingMetrics{}, err
		}
		directory = asg
		// Minimal pairwise agreement: one message between the two
		// storing routers (the paper's Table I convention).
		messages = int64(len(provision[r1])) * (2 - 1)
	}

	eng := &des.Engine{}
	net, err := ccn.NewNetwork(eng, g, cat, ccn.Options{
		AccessLatency: 1,
		Mode:          ccn.CacheNone,
		Directory:     directory,
		Stores: func(id topology.NodeID) (cache.Store, error) {
			return cache.NewStatic(provision[id])
		},
	})
	if err != nil {
		return MotivatingMetrics{}, err
	}
	if err := net.AttachOriginAt(r0, 50); err != nil {
		return MotivatingMetrics{}, err
	}

	// Two identical flows {a, a, b} at R1 and R2.
	var hops metrics.Mean
	counts := metrics.NewCounter()
	done := func(res ccn.RequestResult) {
		hops.Observe(float64(res.Hops))
		counts.Inc(res.ServedBy.String())
	}
	for _, router := range []topology.NodeID{r1, r2} {
		flow, err := workload.NewSequence([]catalog.ID{contentA, contentA, contentB})
		if err != nil {
			return MotivatingMetrics{}, err
		}
		router := router
		// Space requests far enough apart that cycles do not overlap;
		// the example reasons about sequential steady-state requests.
		for k := 0; k < 3*cycles; k++ {
			id := flow.Next()
			if err := eng.At(float64(k)*1000, func() {
				if err := net.Request(router, id, done); err != nil {
					panic(fmt.Sprintf("sim: motivating request: %v", err))
				}
			}); err != nil {
				return MotivatingMetrics{}, err
			}
		}
	}
	eng.Run()

	total := hops.N()
	if total == 0 {
		return MotivatingMetrics{}, fmt.Errorf("sim: no requests completed")
	}
	return MotivatingMetrics{
		OriginLoad:    float64(counts.Get("origin")) / float64(total),
		MeanHops:      hops.Value(),
		CoordMessages: messages,
	}, nil
}
