package sim

import (
	"math"
	"testing"

	"ccncoord/internal/catalog"
	"ccncoord/internal/coord"
	"ccncoord/internal/model"
	"ccncoord/internal/topology"
)

func adaptiveBase(g *topology.Graph, catalogSize, capacity int64) model.Config {
	return model.Config{
		S: 0.5, // wrong initial guess on purpose
		N: float64(catalogSize), C: float64(capacity), Routers: g.N(),
		Lat:      model.LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.95,
	}
}

// TestAdaptiveRunClosedLoop exercises the full loop: bootstrap epoch is
// non-coordinated; the coordinator learns the true Zipf exponent from
// measured traffic and installs an estimated placement that reduces the
// origin load in later epochs.
func TestAdaptiveRunClosedLoop(t *testing.T) {
	const trueS = 0.8
	g := topology.USA()
	sc := Scenario{
		Topology:      g,
		CatalogSize:   20000,
		ZipfS:         trueS,
		Capacity:      150,
		Requests:      40000,
		Seed:          5,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	epochs, err := AdaptiveRun(sc, adaptiveBase(g, sc.CatalogSize, sc.Capacity), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(epochs))
	}
	first, last := epochs[0], epochs[len(epochs)-1]
	if first.Result.Policy != PolicyNonCoordinated {
		t.Errorf("bootstrap epoch policy = %v", first.Result.Policy)
	}
	if last.Result.Policy != PolicyCoordinated {
		t.Errorf("final epoch policy = %v", last.Result.Policy)
	}
	// The estimate must have moved from the wrong prior toward the true
	// exponent.
	if math.Abs(last.EstimatedS-trueS) > 0.25 {
		t.Errorf("estimated s = %v, want near %v", last.EstimatedS, trueS)
	}
	// Coordination learned from measurements must reduce origin load
	// versus the non-coordinated bootstrap.
	if last.Result.OriginLoad >= first.Result.OriginLoad {
		t.Errorf("origin load did not improve: %v -> %v",
			first.Result.OriginLoad, last.Result.OriginLoad)
	}
	// The installed level matches what the coordinator chose.
	if last.Level <= 0 || last.Level > 1 {
		t.Errorf("level = %v", last.Level)
	}
	// Reports must not leak into the records.
	for _, e := range epochs {
		if e.Result.Reports != nil {
			t.Error("bulk reports retained in epoch record")
		}
	}
	// Coordination messages were measured for the installed placements.
	if last.Cost.Total() <= 0 {
		t.Errorf("no coordination cost measured: %+v", last.Cost)
	}
}

func TestAdaptiveRunValidation(t *testing.T) {
	g := topology.USA()
	sc := Scenario{Topology: g}
	if _, err := AdaptiveRun(sc, adaptiveBase(g, 1000, 10), 1); err == nil {
		t.Error("fewer than 2 epochs should fail")
	}
	if _, err := AdaptiveRun(Scenario{}, adaptiveBase(g, 1000, 10), 2); err == nil {
		t.Error("missing topology should fail")
	}
	base := adaptiveBase(g, 1000, 10)
	base.Routers = 3
	if _, err := AdaptiveRun(sc, base, 2); err == nil {
		t.Error("router count mismatch should fail")
	}
}

func TestExternalPlacement(t *testing.T) {
	sc := testScenario()
	sc.Requests = 10000
	// Derive a placement from synthetic reports and install it.
	routers := make([]topology.NodeID, sc.Topology.N())
	counts := map[catalogID]int64{}
	for i := range routers {
		routers[i] = topology.NodeID(i)
	}
	for rank := int64(1); rank <= 2000; rank++ {
		counts[catalogID(rank)] = 3000 - rank
	}
	placement, err := computePlacement(routers, counts, sc.Capacity-sc.Coordinated, sc.Coordinated)
	if err != nil {
		t.Fatal(err)
	}
	sc.Placement = placement
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeerHit <= 0 {
		t.Errorf("external placement produced no peer traffic")
	}
	wantMsgs := 2 * int64(placement.Assignment.Size())
	if res.CoordMessages != wantMsgs {
		t.Errorf("CoordMessages = %d, want %d", res.CoordMessages, wantMsgs)
	}
	// Placement with a non-coordinated policy is rejected.
	sc.Policy = PolicyNonCoordinated
	if err := sc.Validate(); err == nil {
		t.Error("placement with non-coordinated policy should fail validation")
	}
}

// TestCollectReports: the per-router counts must sum to the measured
// request total.
func TestCollectReports(t *testing.T) {
	sc := testScenario()
	sc.Requests = 8000
	sc.CollectReports = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != sc.Topology.N() {
		t.Fatalf("reports = %d, want %d", len(res.Reports), sc.Topology.N())
	}
	var total int64
	for _, rep := range res.Reports {
		for _, c := range rep.Counts {
			total += c
		}
	}
	if total != int64(res.Requests) {
		t.Errorf("report counts sum to %d, measured %d", total, res.Requests)
	}
}

// catalogID and computePlacement adapt the coord package's helpers for
// this test file.
type catalogID = catalog.ID

func computePlacement(routers []topology.NodeID, counts map[catalogID]int64, localSlots, coordSlots int64) (*coord.Placement, error) {
	reports := []coord.Report{{Router: routers[0], Counts: counts}}
	return coord.ComputePlacement(reports, routers, localSlots, coordSlots)
}
