package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ccncoord/internal/timeline"
	"ccncoord/internal/topology"
)

// TestRunTimelineInstallRecord checks a coordinated run with a timeline
// ring records exactly one placement-installation epoch whose measured
// message count matches the run's coordination accounting and stays
// within the model's 2*n*x budget.
func TestRunTimelineInstallRecord(t *testing.T) {
	sc := testScenario()
	sc.Requests = 10000
	sc.EmitManifest = true
	ring := timeline.NewRing(16)
	sc.Timeline = ring
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tl := ring.Snapshot()
	if len(tl.Records) != 1 {
		t.Fatalf("timeline holds %d records after one run, want 1", len(tl.Records))
	}
	rec := tl.Records[0]
	if rec.Epoch != 1 {
		t.Errorf("install record epoch = %d, want 1", rec.Epoch)
	}
	if rec.Messages != res.CoordMessages {
		t.Errorf("record messages = %d, run accounted %d", rec.Messages, res.CoordMessages)
	}
	if rec.Messages > rec.BoundMessages {
		t.Errorf("measured %d messages above the model bound %d", rec.Messages, rec.BoundMessages)
	}
	n := int64(sc.Topology.N())
	if want := 2 * n * rec.CoordSlots; rec.BoundMessages != want {
		t.Errorf("bound = %d, want 2*n*x_eff = %d", rec.BoundMessages, want)
	}
	if rec.MessagesUp+rec.MessagesDown != rec.Messages {
		t.Errorf("direction split %d+%d != %d", rec.MessagesUp, rec.MessagesDown, rec.Messages)
	}
	if rec.WallMs != 0 {
		t.Errorf("install record wall time = %g, must stay zero for determinism", rec.WallMs)
	}
	if rec.Churn <= 0 {
		t.Errorf("first installation churn = %d, want every coordinated content counted", rec.Churn)
	}
	if res.Manifest == nil {
		t.Fatal("manifest missing")
	}
	if !reflect.DeepEqual(res.Manifest.Timeline, tl.Records) {
		t.Errorf("manifest timeline %+v diverges from ring %+v", res.Manifest.Timeline, tl.Records)
	}
}

// TestRunTimelineDeterministic pins that two identical runs append
// byte-identical records — the batch install path never touches a wall
// clock.
func TestRunTimelineDeterministic(t *testing.T) {
	run := func() []timeline.EpochRecord {
		sc := testScenario()
		sc.Requests = 5000
		ring := timeline.NewRing(4)
		sc.Timeline = ring
		if _, err := Run(sc); err != nil {
			t.Fatal(err)
		}
		return ring.Snapshot().Records
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("install records differ across identical runs:\na: %+v\nb: %+v", a, b)
	}
}

// TestManifestOmitsTelemetryWhenOff is the byte-identity guard: with
// Timeline nil and EngineTelemetry false the manifest JSON must not
// contain any of the new sections, at any shard width.
func TestManifestOmitsTelemetryWhenOff(t *testing.T) {
	for _, shards := range []int{1, 4} {
		sc := testScenario()
		sc.Requests = 5000
		sc.Shards = shards
		sc.EmitManifest = true
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := res.Manifest.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{`"timeline"`, `"windows"`, `"shard_stats"`, `"cross_shard_matrix"`, `"mean_window_span_ms"`} {
			if strings.Contains(buf.String(), key) {
				t.Errorf("shards=%d: telemetry-off manifest contains %s", shards, key)
			}
		}
	}
}

// TestShardedEngineTelemetryInManifest runs a sharded scenario with
// engine telemetry on and checks the manifest carries consistent window
// and per-shard accounting.
func TestShardedEngineTelemetryInManifest(t *testing.T) {
	sc := testScenario()
	sc.Requests = 10000
	sc.Shards = 4
	sc.EmitManifest = true
	sc.EngineTelemetry = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	eng := res.Manifest.Engine
	if eng.Shards != 4 {
		t.Fatalf("run resolved to %d shards, want 4 (engine: %+v)", eng.Shards, eng)
	}
	if eng.Windows == 0 {
		t.Error("telemetry manifest reports zero windows for a sharded run")
	}
	if eng.MeanWindowSpanMs <= 0 {
		t.Errorf("mean window span = %g, want positive", eng.MeanWindowSpanMs)
	}
	if len(eng.ShardStats) != eng.Shards {
		t.Fatalf("shard stats for %d shards, engine ran %d", len(eng.ShardStats), eng.Shards)
	}
	var sumProcessed uint64
	for _, ps := range eng.ShardStats {
		sumProcessed += ps.Processed
		if ps.ActiveWindows == 0 || ps.ActiveWindows > eng.Windows {
			t.Errorf("shard %d active windows %d outside (0, %d]", ps.Shard, ps.ActiveWindows, eng.Windows)
		}
	}
	if sumProcessed != eng.EventsProcessed {
		t.Errorf("per-shard processed sums to %d, engine total %d", sumProcessed, eng.EventsProcessed)
	}
	var sumMatrix uint64
	for _, row := range eng.CrossShardMatrix {
		for _, v := range row {
			sumMatrix += v
		}
	}
	if sumMatrix != eng.CrossShardEvents {
		t.Errorf("traffic matrix sums to %d, cross-shard total %d", sumMatrix, eng.CrossShardEvents)
	}
}

// TestAdaptiveRunTimeline checks the closed loop appends one record per
// coordination epoch with the measured cost inside the model budget and
// the online estimate attached.
func TestAdaptiveRunTimeline(t *testing.T) {
	g := topology.USA()
	sc := Scenario{
		Topology:      g,
		CatalogSize:   20000,
		ZipfS:         0.8,
		Capacity:      150,
		Requests:      20000,
		Seed:          5,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	ring := timeline.NewRing(16)
	sc.Timeline = ring
	epochs, err := AdaptiveRun(sc, adaptiveBase(g, sc.CatalogSize, sc.Capacity), 3)
	if err != nil {
		t.Fatal(err)
	}
	tl := ring.Snapshot()
	if len(tl.Records) != len(epochs) {
		t.Fatalf("timeline holds %d records for %d adaptive epochs", len(tl.Records), len(epochs))
	}
	n := int64(g.N())
	for i, rec := range tl.Records {
		if rec.Epoch != int64(i)+1 {
			t.Errorf("record %d epoch = %d, want %d", i, rec.Epoch, i+1)
		}
		if rec.Messages <= 0 || rec.Messages > rec.BoundMessages {
			t.Errorf("epoch %d measured %d messages against bound %d", rec.Epoch, rec.Messages, rec.BoundMessages)
		}
		if want := 2 * n * rec.CoordSlots; rec.BoundMessages != want {
			t.Errorf("epoch %d bound = %d, want 2*n*x_eff = %d", rec.Epoch, rec.BoundMessages, want)
		}
		if rec.EstimatedS <= 0 {
			t.Errorf("epoch %d carries no Zipf estimate", rec.Epoch)
		}
		if rec.Messages != epochs[i].Cost.Total() {
			t.Errorf("epoch %d messages %d != loop cost %d", rec.Epoch, rec.Messages, epochs[i].Cost.Total())
		}
		if rec.Requests != int64(epochs[i].Result.Requests) {
			t.Errorf("epoch %d requests %d != measured %d", rec.Epoch, rec.Requests, epochs[i].Result.Requests)
		}
		if rec.ReportedContents <= 0 || rec.MaxReport <= 0 {
			t.Errorf("epoch %d report cardinalities = (%d, %d), want positive", rec.Epoch, rec.ReportedContents, rec.MaxReport)
		}
		if rec.WallMs != 0 {
			t.Errorf("epoch %d wall time %g, adaptive records must stay deterministic", rec.Epoch, rec.WallMs)
		}
	}
	// The first coordinated installation assigns every content fresh.
	if first := tl.Records[0]; first.Churn <= 0 {
		t.Errorf("first epoch churn = %d, want positive", first.Churn)
	}
}
