package sim

import (
	"fmt"

	"ccncoord/internal/coord"
	"ccncoord/internal/model"
	"ccncoord/internal/timeline"
	"ccncoord/internal/topology"
)

// This file closes the loop of the paper's first future-work direction
// end to end: the network starts non-coordinated, routers report the
// request counts they actually observed in the packet simulation, the
// adaptive coordinator estimates the Zipf exponent and re-optimizes the
// coordination level, the resulting placement (built from *estimated*
// popularity, not ground truth) is installed, and the next epoch runs on
// it. No component ever sees the true workload parameters.

// AdaptiveEpoch records one epoch of the closed loop.
type AdaptiveEpoch struct {
	Epoch      int
	EstimatedS float64 // coordinator's Zipf estimate after this epoch's reports
	Level      float64 // re-optimized coordination level installed for the next epoch
	Result     Result  // measured network behavior during this epoch
	Cost       coord.Cost
}

// AdaptiveRun executes the closed adaptive-provisioning loop for the
// given number of epochs (>= 2: the first epoch is the non-coordinated
// bootstrap). base supplies the cost-model parameters; its S field is
// only the initial guess. The scenario's Policy, Coordinated, Placement
// and CollectReports fields are managed by the loop.
func AdaptiveRun(sc Scenario, base model.Config, epochs int) ([]AdaptiveEpoch, error) {
	if epochs < 2 {
		return nil, fmt.Errorf("sim: adaptive run needs at least 2 epochs, got %d", epochs)
	}
	if sc.Topology == nil {
		return nil, fmt.Errorf("sim: adaptive run needs a topology")
	}
	if base.Routers != sc.Topology.N() {
		return nil, fmt.Errorf("sim: model says %d routers, topology has %d", base.Routers, sc.Topology.N())
	}
	routers := make([]topology.NodeID, sc.Topology.N())
	for i := range routers {
		routers[i] = topology.NodeID(i)
	}
	adaptive, err := coord.NewAdaptive(routers, base)
	if err != nil {
		return nil, fmt.Errorf("sim: adaptive run: %w", err)
	}

	sc.CollectReports = true
	sc.Placement = nil
	sc.Policy = PolicyNonCoordinated // bootstrap epoch

	// The loop appends its own epoch records — richer than the install
	// records provisionPolicy would write (measured epoch behavior,
	// estimate, churn against the previous placement) — so the ring is
	// detached from the inner runs to avoid double-counting.
	ring := sc.Timeline
	sc.Timeline = nil
	var prevAsg *coord.Assignment

	out := make([]AdaptiveEpoch, 0, epochs)
	for epoch := 1; epoch <= epochs; epoch++ {
		sc.Seed += int64(epoch) * 10007 // fresh workload per epoch
		res, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("sim: adaptive epoch %d: %w", epoch, err)
		}
		placement, cost, err := adaptive.Epoch(res.Reports)
		if err != nil {
			return nil, fmt.Errorf("sim: adaptive epoch %d: %w", epoch, err)
		}
		if ring != nil {
			ring.Append(adaptiveEpochRecord(ring, base, adaptive, res, cost, placement, prevAsg, sc.Capacity))
		}
		prevAsg = placement.Assignment
		res.Reports = nil // drop bulk data from the record
		out = append(out, AdaptiveEpoch{
			Epoch:      epoch,
			EstimatedS: adaptive.LastEstimate(),
			Level:      adaptive.LastLevel(),
			Result:     res,
			Cost:       cost,
		})
		// Install the estimated placement for the next epoch.
		sc.Policy = PolicyCoordinated
		sc.Placement = placement
	}
	return out, nil
}

// adaptiveEpochRecord builds one timeline record for a closed-loop
// coordination epoch: the measured protocol cost of installing the
// epoch's estimated placement next to the model's 2*n*ceil(size/n)
// message budget, the adaptive estimate that drove it, and the
// placement churn against the previous epoch. WallMs stays zero so
// adaptive timelines are fully deterministic.
func adaptiveEpochRecord(ring *timeline.Ring, base model.Config, adaptive *coord.Adaptive,
	res Result, cost coord.Cost, placement *coord.Placement, prevAsg *coord.Assignment, capacity int64) timeline.EpochRecord {
	n := int64(base.Routers)
	size := int64(placement.Assignment.Size())
	xEff := int64(0)
	if n > 0 {
		xEff = (size + n - 1) / n
	}
	var reported, maxReport int64
	for _, rep := range res.Reports {
		card := int64(len(rep.Counts))
		reported += card
		if card > maxReport {
			maxReport = card
		}
	}
	var localSlots int64
	if capacity > xEff {
		localSlots = capacity - xEff
	}
	return timeline.EpochRecord{
		Epoch:            int64(ring.Total()) + 1,
		Requests:         int64(res.Requests),
		Messages:         cost.Total(),
		MessagesUp:       cost.MessagesUp,
		MessagesDown:     cost.MessagesDown,
		BoundMessages:    2 * n * xEff,
		UnitCostMs:       base.UnitCost,
		BoundCostMs:      base.UnitCost * float64(n) * float64(xEff),
		ConvergenceMs:    cost.Convergence,
		LocalSlots:       localSlots,
		CoordSlots:       xEff,
		Level:            adaptive.LastLevel(),
		EstimatedS:       adaptive.LastEstimate(),
		Churn:            coord.Churn(prevAsg, placement.Assignment),
		ReportedContents: reported,
		MaxReport:        maxReport,
	}
}
