package sim

import (
	"fmt"

	"ccncoord/internal/coord"
	"ccncoord/internal/model"
	"ccncoord/internal/topology"
)

// This file closes the loop of the paper's first future-work direction
// end to end: the network starts non-coordinated, routers report the
// request counts they actually observed in the packet simulation, the
// adaptive coordinator estimates the Zipf exponent and re-optimizes the
// coordination level, the resulting placement (built from *estimated*
// popularity, not ground truth) is installed, and the next epoch runs on
// it. No component ever sees the true workload parameters.

// AdaptiveEpoch records one epoch of the closed loop.
type AdaptiveEpoch struct {
	Epoch      int
	EstimatedS float64 // coordinator's Zipf estimate after this epoch's reports
	Level      float64 // re-optimized coordination level installed for the next epoch
	Result     Result  // measured network behavior during this epoch
	Cost       coord.Cost
}

// AdaptiveRun executes the closed adaptive-provisioning loop for the
// given number of epochs (>= 2: the first epoch is the non-coordinated
// bootstrap). base supplies the cost-model parameters; its S field is
// only the initial guess. The scenario's Policy, Coordinated, Placement
// and CollectReports fields are managed by the loop.
func AdaptiveRun(sc Scenario, base model.Config, epochs int) ([]AdaptiveEpoch, error) {
	if epochs < 2 {
		return nil, fmt.Errorf("sim: adaptive run needs at least 2 epochs, got %d", epochs)
	}
	if sc.Topology == nil {
		return nil, fmt.Errorf("sim: adaptive run needs a topology")
	}
	if base.Routers != sc.Topology.N() {
		return nil, fmt.Errorf("sim: model says %d routers, topology has %d", base.Routers, sc.Topology.N())
	}
	routers := make([]topology.NodeID, sc.Topology.N())
	for i := range routers {
		routers[i] = topology.NodeID(i)
	}
	adaptive, err := coord.NewAdaptive(routers, base)
	if err != nil {
		return nil, fmt.Errorf("sim: adaptive run: %w", err)
	}

	sc.CollectReports = true
	sc.Placement = nil
	sc.Policy = PolicyNonCoordinated // bootstrap epoch

	out := make([]AdaptiveEpoch, 0, epochs)
	for epoch := 1; epoch <= epochs; epoch++ {
		sc.Seed += int64(epoch) * 10007 // fresh workload per epoch
		res, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("sim: adaptive epoch %d: %w", epoch, err)
		}
		placement, cost, err := adaptive.Epoch(res.Reports)
		if err != nil {
			return nil, fmt.Errorf("sim: adaptive epoch %d: %w", epoch, err)
		}
		res.Reports = nil // drop bulk data from the record
		out = append(out, AdaptiveEpoch{
			Epoch:      epoch,
			EstimatedS: adaptive.LastEstimate(),
			Level:      adaptive.LastLevel(),
			Result:     res,
			Cost:       cost,
		})
		// Install the estimated placement for the next epoch.
		sc.Policy = PolicyCoordinated
		sc.Placement = placement
	}
	return out, nil
}
