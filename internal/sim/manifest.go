// The run manifest: one serializable document describing everything a
// finished run measured — summary metrics, the full registry snapshot
// (latency histogram with underflow/overflow accounting, tier means,
// served-by counts), per-router data-plane stats with network-wide
// totals, coordination and transport message counts, availability and
// downtime, and engine gauges. A manifest from a given scenario is
// byte-identical across runs (encoding/json serializes map keys
// sorted, and the simulator is deterministic), so manifests diff
// cleanly across code versions.
package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"ccncoord/internal/ccn"
	"ccncoord/internal/des"
	"ccncoord/internal/metrics"
	"ccncoord/internal/timeline"
)

// ManifestSchema identifies the manifest JSON layout. The schema is
// append-only: consumers must tolerate unknown fields, and any
// field-semantics change bumps the version suffix.
const ManifestSchema = "ccncoord/run-manifest/v1"

// RunManifest is the run's observability record. Every counter in it
// matches the corresponding Result field / ccn.Network accessor exactly
// — the manifest is a serialization of the run's accounting, not a
// second measurement.
type RunManifest struct {
	Schema     string `json:"schema"`
	Policy     string `json:"policy"`
	Assignment string `json:"assignment"`
	Routers    int    `json:"routers"`
	Seed       int64  `json:"seed"`
	Requests   int    `json:"requests"`
	Warmup     int    `json:"warmup"`

	Summary ManifestSummary `json:"summary"`

	// Metrics is the registry snapshot: the latency histogram
	// ("latency_ms", with underflow/overflow/rejected accounting), the
	// running means (latency, hops, per-tier latency), and the
	// served-by counter.
	Metrics metrics.RegistrySnapshot `json:"metrics"`

	Availability metrics.AvailabilitySnapshot `json:"availability"`

	Coordination ManifestCoordination `json:"coordination"`
	Transport    ManifestTransport    `json:"transport"`

	// Nodes holds every router's data-plane snapshot in ID order;
	// NodeTotals is their network-wide sum.
	Nodes      []ccn.NodeStats `json:"nodes"`
	NodeTotals ccn.StatsTotals `json:"node_totals"`

	Engine ManifestEngine `json:"engine"`

	// Chaos holds the chaos scenario's coordination outcomes when the
	// run executed one; nil otherwise (so non-chaos manifests are
	// byte-identical to those of earlier versions).
	Chaos *ManifestChaos `json:"chaos,omitempty"`

	// Trace reports the tracer's sampling accounting when the run was
	// traced; nil otherwise. Note the counts depend on the tracer's
	// prior use — a tracer shared across runs accumulates.
	Trace *ManifestTrace `json:"trace,omitempty"`

	// Timeline carries the coordination-epoch records retained by the
	// scenario's telemetry ring (Scenario.Timeline) — for single-run
	// scenarios the placement installation, for adaptive runs one
	// record per coordination epoch. Nil (and omitted) when the run
	// recorded no timeline, keeping telemetry-off manifests
	// byte-identical to earlier versions.
	Timeline []timeline.EpochRecord `json:"timeline,omitempty"`
}

// ManifestChaos mirrors the chaos-outcome Result fields.
type ManifestChaos struct {
	Scenario               string  `json:"scenario"`
	CoordOutages           int     `json:"coord_outages"`
	CoordDowntimeMs        float64 `json:"coord_downtime_ms"`
	DegradedMs             float64 `json:"degraded_ms"`
	DegradedServes         int64   `json:"degraded_serves"`
	DegradedRequests       int64   `json:"degraded_requests"`
	DegradedOriginLoad     float64 `json:"degraded_origin_load"`
	StalePlacementHits     int64   `json:"stale_placement_hits"`
	ReconvergeMoves        int64   `json:"reconverge_moves"`
	MeanTimeToReconvergeMs float64 `json:"mean_time_to_reconverge_ms"`
}

// ManifestSummary mirrors the headline Result fields.
type ManifestSummary struct {
	OriginLoad    float64 `json:"origin_load"`
	LocalHit      float64 `json:"local_hit"`
	PeerHit       float64 `json:"peer_hit"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	MeanHops      float64 `json:"mean_hops"`
	LatencyP50    float64 `json:"latency_p50_ms"`
	LatencyP95    float64 `json:"latency_p95_ms"`
	LatencyP99    float64 `json:"latency_p99_ms"`
	Availability  float64 `json:"availability"`
	DowntimeMs    float64 `json:"downtime_ms"`
}

// ManifestCoordination aggregates the coordination protocol's message
// economy: placement installation, failure detection, and repair.
type ManifestCoordination struct {
	Messages           int64   `json:"messages"`
	ConvergenceMs      float64 `json:"convergence_ms"`
	Heartbeats         int64   `json:"heartbeats"`
	RepairMessages     int64   `json:"repair_messages"`
	Repairs            int     `json:"repairs"`
	MeanTimeToRepairMs float64 `json:"mean_time_to_repair_ms"`
}

// ManifestTransport aggregates packet-level data-plane activity.
type ManifestTransport struct {
	InterestTransmissions int64   `json:"interest_transmissions"`
	DataTransmissions     int64   `json:"data_transmissions"`
	DroppedInterests      int64   `json:"dropped_interests"`
	DroppedData           int64   `json:"dropped_data"`
	Retransmissions       int64   `json:"retransmissions"`
	FaultDrops            int64   `json:"fault_drops"`
	ExpiredInterests      int64   `json:"expired_interests"`
	FailedRequests        int64   `json:"failed_requests"`
	RouteRecomputes       int64   `json:"route_recomputes"`
	QueuedPackets         int64   `json:"queued_packets"`
	MeanQueueingDelayMs   float64 `json:"mean_queueing_delay_ms"`
}

// ManifestEngine holds discrete-event engine gauges. EventsProcessed is
// identical across shard counts (sharding never changes the event set);
// PendingPeak is exact on serial runs but a lower-bound approximation on
// sharded ones (sampled at window barriers plus per-shard peaks), so it
// may differ between shard counts.
type ManifestEngine struct {
	EventsProcessed uint64 `json:"events_processed"`
	PendingPeak     int    `json:"pending_peak"`
	// Shards is the number of event-loop shards the run executed on
	// (1 = the serial engine). CrossShardEvents counts events delivered
	// across a shard boundary (0 on serial runs).
	Shards           int    `json:"shards"`
	CrossShardEvents uint64 `json:"cross_shard_events"`
	// ShardFallbackReason records why an explicitly requested
	// multi-shard run (Scenario.Shards >= 2) was downgraded to the
	// serial engine — a non-shardable scenario feature, or a partition
	// with no lookahead. Empty (and omitted from the JSON, keeping
	// pre-existing manifests byte-identical) when no fallback happened;
	// the automatic rule choosing serial is policy, not a fallback.
	ShardFallbackReason string `json:"shard_fallback_reason,omitempty"`

	// Extended sharded-engine telemetry, populated only under
	// Scenario.EngineTelemetry on a sharded run (all omitted otherwise,
	// preserving earlier manifests byte for byte): window accounting,
	// per-shard load balance including wall-clock busy/barrier-wait
	// time (nondeterministic; ccnbench -diff ignores *_wall_ms), and
	// the cross-shard traffic matrix.
	Windows          uint64           `json:"windows,omitempty"`
	MeanWindowSpanMs float64          `json:"mean_window_span_ms,omitempty"`
	ShardStats       []des.ShardStats `json:"shard_stats,omitempty"`
	CrossShardMatrix [][]uint64       `json:"cross_shard_matrix,omitempty"`
}

// ManifestTrace is the tracer's sampling accounting.
type ManifestTrace struct {
	Stride  uint64 `json:"stride"`
	Seen    uint64 `json:"seen"`
	Emitted uint64 `json:"emitted"`
}

// buildManifest assembles the manifest from the run's finished
// accounting. It copies; it does not re-measure. The caller supplies
// the engine gauges directly so the serial and sharded engines share
// this path.
func buildManifest(sc Scenario, res Result, engine ManifestEngine, net *ccn.Network, reg *metrics.Registry, avail metrics.AvailabilitySnapshot) *RunManifest {
	nodes := net.AllStats()
	m := &RunManifest{
		Schema:     ManifestSchema,
		Policy:     sc.Policy.String(),
		Assignment: sc.Assignment.String(),
		Routers:    sc.Topology.N(),
		Seed:       sc.Seed,
		Requests:   res.Requests,
		Warmup:     sc.Warmup,
		Summary: ManifestSummary{
			OriginLoad:    res.OriginLoad,
			LocalHit:      res.LocalHit,
			PeerHit:       res.PeerHit,
			MeanLatencyMs: res.MeanLatency,
			MeanHops:      res.MeanHops,
			LatencyP50:    res.LatencyP50,
			LatencyP95:    res.LatencyP95,
			LatencyP99:    res.LatencyP99,
			Availability:  res.Availability,
			DowntimeMs:    res.RouterDowntime,
		},
		Metrics:      reg.Snapshot(),
		Availability: avail,
		Coordination: ManifestCoordination{
			Messages:           res.CoordMessages,
			ConvergenceMs:      res.CoordConvergence,
			Heartbeats:         res.HeartbeatMessages,
			RepairMessages:     res.RepairMessages,
			Repairs:            len(res.Repairs),
			MeanTimeToRepairMs: res.MeanTimeToRepair,
		},
		Transport: ManifestTransport{
			InterestTransmissions: res.InterestTransmissions,
			DataTransmissions:     res.DataTransmissions,
			DroppedInterests:      res.DroppedInterests,
			DroppedData:           res.DroppedData,
			Retransmissions:       res.Retransmissions,
			FaultDrops:            res.FaultDrops,
			ExpiredInterests:      res.ExpiredInterests,
			FailedRequests:        res.FailedRequests,
			RouteRecomputes:       res.RouteRecomputes,
			QueuedPackets:         res.QueuedPackets,
			MeanQueueingDelayMs:   res.MeanQueueingDelay,
		},
		Nodes:      nodes,
		NodeTotals: ccn.SumStats(nodes),
		Engine:     engine,
	}
	if sc.Chaos != nil {
		m.Chaos = &ManifestChaos{
			Scenario:               sc.Chaos.Name,
			CoordOutages:           res.CoordOutages,
			CoordDowntimeMs:        res.CoordDowntime,
			DegradedMs:             res.DegradedTime,
			DegradedServes:         res.DegradedServes,
			DegradedRequests:       res.DegradedRequests,
			DegradedOriginLoad:     res.DegradedOriginLoad,
			StalePlacementHits:     res.StalePlacementHits,
			ReconvergeMoves:        res.ReconvergeMoves,
			MeanTimeToReconvergeMs: res.MeanTimeToReconverge,
		}
	}
	if sc.Tracer != nil {
		m.Trace = &ManifestTrace{
			Stride:  sc.Tracer.Stride(),
			Seen:    sc.Tracer.Seen(),
			Emitted: sc.Tracer.Emitted(),
		}
	}
	if sc.Timeline != nil {
		m.Timeline = sc.Timeline.Snapshot().Records
	}
	return m
}

// WriteJSON serializes the manifest as indented JSON followed by a
// newline. The output is byte-deterministic for a given manifest.
func (m *RunManifest) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sim: marshaling manifest: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("sim: writing manifest: %w", err)
	}
	return nil
}
