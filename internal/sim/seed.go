package sim

// Per-router seed derivation. The scenario seed fans out into one
// workload stream and one arrival-clock stream per router. Each stream
// seed is produced by two rounds of the splitmix64 finalizer over the
// (scenario seed, stream, router) triple, so router 0's streams differ
// from the raw scenario seed and adjacent routers are decorrelated —
// unlike the previous additive/XOR derivations, where router 0 reused
// the scenario seed verbatim and neighboring routers differed in only a
// few bits.

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator, a
// full-period bijective mixer on 64-bit integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seed streams of one scenario.
const (
	streamWorkload uint64 = 1
	streamArrival  uint64 = 2
	streamReplica  uint64 = 3
)

// mixSeed derives a decorrelated per-router seed for the given stream.
func mixSeed(base int64, router int, stream uint64) int64 {
	x := splitmix64(uint64(base) ^ stream*0x9e3779b97f4a7c15)
	return int64(splitmix64(x ^ uint64(router)))
}

// WorkloadSeed returns the request-content seed of the given router
// under the scenario seed base. Exported so custom WorkloadFactory
// implementations (e.g. the regional-skew ablation) can reproduce the
// default derivation.
func WorkloadSeed(base int64, router int) int64 {
	return mixSeed(base, router, streamWorkload)
}

// ArrivalSeed returns the arrival-clock seed of the given router under
// the scenario seed base.
func ArrivalSeed(base int64, router int) int64 {
	return mixSeed(base, router, streamArrival)
}

// ReplicaSeed derives the scenario seed of replica r from a base seed.
// Replica 0 is the base seed itself, so a single-replica run is
// identical to a plain Run of the base scenario.
func ReplicaSeed(base int64, r int) int64 {
	if r == 0 {
		return base
	}
	return mixSeed(base, r, streamReplica)
}
