// Package sim wires the substrates into runnable experiments: it builds a
// CCN data plane over a topology, provisions content stores according to
// a caching policy (non-coordinated, the paper's partitioned coordinated
// placement, or dynamic LRU/LFU baselines), drives Zipf request workloads
// through it, and measures what the analytical model predicts: origin
// load, per-tier hit ratios, mean latency, and mean hop count.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/ccn"
	"ccncoord/internal/coord"
	"ccncoord/internal/des"
	"ccncoord/internal/fault"
	"ccncoord/internal/metrics"
	"ccncoord/internal/timeline"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
	"ccncoord/internal/workload"
)

// Policy selects how router storage is provisioned.
type Policy int

const (
	// PolicyNonCoordinated pins every router to the top-c contents, the
	// steady state of independent popularity-based caching (the paper's
	// non-coordinated strategy).
	PolicyNonCoordinated Policy = iota
	// PolicyCoordinated applies the paper's partitioned placement:
	// top c-x replicated locally everywhere, the next n*x ranks striped
	// across routers, with directory-based redirection.
	PolicyCoordinated
	// PolicyLRU runs dynamic LRU stores with leave-copy-everywhere
	// on-path caching and no coordination.
	PolicyLRU
	// PolicyLFU runs dynamic LFU stores with leave-copy-everywhere
	// on-path caching and no coordination.
	PolicyLFU
	// PolicySLRU runs dynamic segmented-LRU stores (scan resistant) with
	// leave-copy-everywhere on-path caching.
	PolicySLRU
	// PolicyTwoQ runs dynamic 2Q stores with leave-copy-everywhere
	// on-path caching.
	PolicyTwoQ
	// PolicyProbCache runs dynamic LRU stores with probabilistic on-path
	// caching (admission probability 0.3), the replica-thinning ICN
	// baseline.
	PolicyProbCache
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyNonCoordinated:
		return "non-coordinated"
	case PolicyCoordinated:
		return "coordinated"
	case PolicyLRU:
		return "lru"
	case PolicyLFU:
		return "lfu"
	case PolicySLRU:
		return "slru"
	case PolicyTwoQ:
		return "2q"
	case PolicyProbCache:
		return "probcache"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Assignment selects how coordinated contents are mapped to routers.
type Assignment int

const (
	// AssignStripe is the paper's placement: the coordinated rank band
	// dealt round-robin across routers, balancing popularity mass.
	AssignStripe Assignment = iota
	// AssignHash maps contents to routers by content-id hash (DHT
	// style); popularity balance then holds only in expectation.
	AssignHash
)

// String returns the assignment name.
func (a Assignment) String() string {
	switch a {
	case AssignStripe:
		return "stripe"
	case AssignHash:
		return "hash"
	default:
		return fmt.Sprintf("Assignment(%d)", int(a))
	}
}

// Scenario describes one simulation run.
type Scenario struct {
	Topology    *topology.Graph
	CatalogSize int64
	ZipfS       float64
	Capacity    int64 // c: slots per router
	Coordinated int64 // x: coordinated slots per router (PolicyCoordinated)
	Policy      Policy
	// Assignment selects the coordinated placement strategy
	// (PolicyCoordinated only); the zero value is the paper's striping.
	Assignment Assignment

	// Capacities optionally overrides Capacity per router
	// (heterogeneous networks, the paper's future work). When set, its
	// length must equal the topology size; Coordinated then denotes the
	// coordinated *fraction* numerator applied per router as
	// floor(Coordinated * c_i / Capacity), keeping the same global
	// split ratio.
	Capacities []int64

	// Placement, when non-nil, installs an externally computed
	// provisioning decision (e.g. from the coordination protocol's
	// estimated popularity) instead of deriving the ideal one from true
	// ranks. Requires PolicyCoordinated.
	Placement *coord.Placement

	// CollectReports records per-router request counts into
	// Result.Reports, the input the coordination protocol consumes.
	CollectReports bool

	Requests int // measured requests
	Warmup   int // unmeasured leading requests (cache warmup)
	Seed     int64

	AccessLatency float64 // one-way client <-> router, ms
	OriginLatency float64 // one-way router <-> origin uplink, ms
	// OriginGateway attaches the origin behind one router; when
	// negative, every router has a direct uplink (the model's uniform
	// d2 abstraction).
	OriginGateway topology.NodeID

	// MeanInterArrival is the per-router mean of the exponential
	// inter-arrival time (ms). Zero selects 1 ms.
	MeanInterArrival float64

	// LossRate is the per-transmission drop probability on network
	// links; zero means a lossless fabric. When positive, RetxTimeout
	// must be set (see internal/ccn).
	LossRate float64
	// RetxTimeout is the per-router interest retransmission timeout
	// (ms) on lossy fabrics.
	RetxTimeout float64

	// LinkRate is the per-link serialization capacity in contents per
	// millisecond; zero means infinite (no queueing). See internal/ccn.
	LinkRate float64

	// Routing selects the shortest-path backend the data plane forwards
	// with (see topology.PathProvider and ccn.Options.Routing). The
	// zero value, topology.BackendAuto, keeps the dense matrix below
	// topology.DenseAutoThreshold nodes — every calibrated-dataset run
	// stays byte-identical — and switches to the LRU tree cache on
	// larger generated graphs. Fault scenarios require the dense
	// backend (incremental rerouting repairs a materialized matrix).
	Routing topology.Backend

	// WorkloadFactory, when non-nil, supplies each router's request
	// generator instead of the default stationary Zipf(ZipfS) stream —
	// e.g. a workload.DriftingZipf for non-stationary demand. The
	// factory may capture state that persists across Run calls (the
	// adaptive loop exploits this to drift across epochs).
	WorkloadFactory func(router topology.NodeID) (workload.Generator, error)

	// Fault experiments. Faults are active when FaultScript is
	// non-empty or MTBF is positive; either requires RetxTimeout, since
	// the bounded-retry machinery is what keeps a faulty run live.

	// FaultScript is an explicit fault timeline for scripted
	// experiments (crash the stripe owner at t=500, recover at t=2000).
	FaultScript []fault.Event
	// MTBF and MTTR parameterize a stochastic router-failure process:
	// every router alternates exponentially distributed up-times (mean
	// MTBF, ms) and down-times (mean MTTR, ms). Both must be set
	// together.
	MTBF float64
	MTTR float64
	// FaultSeed drives the stochastic failure process; identical seeds
	// reproduce identical fault timelines. Zero selects 1.
	FaultSeed int64
	// HeartbeatInterval is the coordinator's failure-detector period
	// (ms); zero selects DefaultHeartbeatInterval. HeartbeatMisses is
	// the consecutive-miss threshold that declares a router dead; zero
	// selects DefaultHeartbeatMisses. The detector (and repair) runs
	// only for PolicyCoordinated under faults.
	HeartbeatInterval float64
	HeartbeatMisses   int

	// Chaos, when non-nil, runs a composed chaos scenario on top of the
	// run: coordinator outages, coordination-message loss, partitions,
	// correlated link failures, and an optional flash crowd (see
	// internal/fault). Chaos implies fault injection, so RetxTimeout
	// must be set. Scenarios with coordination failures (coordinator
	// outages or message loss) require PolicyCoordinated.
	Chaos *fault.ChaosScenario
	// StalenessBound is how long (ms) routers keep forwarding on stale
	// placements after the coordination channel goes down before
	// falling back to autonomous degraded mode; zero selects
	// DefaultStalenessBound. Outages shorter than the bound never
	// degrade the plane — placements merely go stale and refresh on
	// reconnect.
	StalenessBound float64
	// CheckpointPath, when non-empty, makes the coordinator save an
	// epoch-versioned checkpoint (placement, detector state) to this
	// path at each chaos coordinator crash and restore from it at the
	// restart — the crash/restart path that must be behaviorally
	// equivalent to an uninterrupted run. Requires a chaos scenario
	// with coordinator outages.
	CheckpointPath string

	// Observer, when non-nil, receives every measured request
	// completion in completion order — the hook determinism probes and
	// custom accounting use.
	Observer func(ccn.RequestResult)

	// Tracer, when non-nil, streams sampled structured events (packet
	// transmissions, drops, retries, faults, heartbeats, repairs,
	// request completions) as JSONL; see internal/trace. Tracing never
	// perturbs the simulation: the tracer draws from no simulation RNG
	// stream, so results are identical with tracing on or off.
	Tracer *trace.Tracer

	// EmitManifest populates Result.Manifest with the run's
	// observability manifest — per-router data-plane stats, the latency
	// histogram with underflow/overflow accounting, availability,
	// downtime, coordination message counts, and engine gauges — ready
	// to serialize next to experiment artifacts.
	EmitManifest bool

	// Shards selects how many event-loop shards drive the run: 1 forces
	// the serial engine, N > 1 requests a conservative parallel run over
	// a deterministic topology partition, and 0 (the default) picks
	// automatically — serial below topology.DenseAutoThreshold routers,
	// so every calibrated-dataset artifact keeps its exact bytes, and
	// min(8, GOMAXPROCS) shards above it. Whatever the setting, results
	// are identical to the serial engine's; scenario features that need
	// globally ordered shared state (faults, chaos, loss, finite link
	// rate, tracing, probabilistic caching, custom workload factories)
	// resolve to 1 shard, and an explicit Shards >= 2 downgraded this
	// way is surfaced: ResolveShardsReason reports it, and the run
	// manifest records it as engine.shard_fallback_reason. See
	// ResolveShards.
	Shards int

	// shardFallbackReason records why an explicit multi-shard request
	// fell back to the serial engine ("" when no fallback happened).
	// Run populates it from ResolveShardsReason — or from the sharded
	// path's degenerate-partition bailout — before dispatching to
	// runSerial, which copies it into the manifest's engine section.
	shardFallbackReason string

	// EngineTelemetry opts the run into the sharded engine's extended
	// telemetry: window accounting, per-shard busy/barrier-wait wall
	// time, and the cross-shard traffic matrix, recorded into the
	// manifest's engine section. Off (the default) leaves every
	// manifest byte-identical to earlier versions — the wall-clock
	// fields it adds are inherently nondeterministic (ccnbench -diff
	// ignores *_wall_ms leaves for exactly this reason).
	EngineTelemetry bool

	// Timeline, when non-nil, receives one coordination epoch record
	// per placement installation — measured protocol messages next to
	// the model's 2*n*x budget — and the run manifest carries the
	// ring's retained records in a "timeline" section. Nil (the
	// default) records nothing and changes no output bytes. The same
	// ring may be shared across runs (e.g. by AdaptiveRun's epochs) to
	// accumulate one continuous timeline.
	Timeline *timeline.Ring
}

// Failure-detector defaults (see Scenario.HeartbeatInterval).
const (
	DefaultHeartbeatInterval = 100.0
	DefaultHeartbeatMisses   = 3
)

// DefaultStalenessBound is how long (ms) routers trust stale placements
// after losing the coordination channel before degrading (see
// Scenario.StalenessBound).
const DefaultStalenessBound = 300.0

// faultsEnabled reports whether the scenario injects any faults.
func (s Scenario) faultsEnabled() bool {
	return len(s.FaultScript) > 0 || s.MTBF > 0 || s.Chaos != nil
}

// Validate checks the scenario parameters.
func (s Scenario) Validate() error {
	switch {
	case s.Topology == nil || s.Topology.N() < 2:
		return fmt.Errorf("sim: need a topology with at least 2 routers")
	case !s.Topology.Connected():
		return fmt.Errorf("sim: topology is not connected")
	case s.CatalogSize < 1:
		return fmt.Errorf("sim: catalog size %d < 1", s.CatalogSize)
	case !(s.ZipfS > 0):
		return fmt.Errorf("sim: Zipf exponent must be positive, got %v", s.ZipfS)
	case s.Capacity < 0:
		return fmt.Errorf("sim: negative capacity %d", s.Capacity)
	case s.Coordinated < 0 || s.Coordinated > s.Capacity:
		return fmt.Errorf("sim: coordinated slots %d outside [0, %d]", s.Coordinated, s.Capacity)
	case s.Capacities != nil && len(s.Capacities) != s.Topology.N():
		return fmt.Errorf("sim: %d per-router capacities for %d routers", len(s.Capacities), s.Topology.N())
	case s.Assignment != AssignStripe && s.Assignment != AssignHash:
		return fmt.Errorf("sim: unknown assignment strategy %d", s.Assignment)
	case s.Placement != nil && s.Policy != PolicyCoordinated:
		return fmt.Errorf("sim: external placement requires the coordinated policy")
	case s.Requests < 1:
		return fmt.Errorf("sim: need at least 1 measured request, got %d", s.Requests)
	case s.Warmup < 0:
		return fmt.Errorf("sim: negative warmup %d", s.Warmup)
	case s.AccessLatency < 0:
		return fmt.Errorf("sim: negative access latency %v", s.AccessLatency)
	case !(s.OriginLatency > 0):
		return fmt.Errorf("sim: origin latency must be positive, got %v", s.OriginLatency)
	case int(s.OriginGateway) >= s.Topology.N():
		return fmt.Errorf("sim: origin gateway %d outside topology", s.OriginGateway)
	case s.LossRate < 0 || s.LossRate >= 1:
		return fmt.Errorf("sim: loss rate %v outside [0, 1)", s.LossRate)
	case s.LossRate > 0 && !(s.RetxTimeout > 0):
		return fmt.Errorf("sim: lossy fabric requires a positive retransmission timeout")
	case s.LinkRate < 0:
		return fmt.Errorf("sim: negative link rate %v", s.LinkRate)
	case s.MTBF < 0:
		return fmt.Errorf("sim: negative MTBF %v", s.MTBF)
	case s.MTTR < 0:
		return fmt.Errorf("sim: negative MTTR %v", s.MTTR)
	case (s.MTBF > 0) != (s.MTTR > 0):
		return fmt.Errorf("sim: MTBF and MTTR must be set together")
	case s.faultsEnabled() && !(s.RetxTimeout > 0):
		return fmt.Errorf("sim: fault injection requires a positive retransmission timeout")
	case s.faultsEnabled() && s.Routing.Resolve(s.Topology.N()) != topology.BackendDense:
		return fmt.Errorf("sim: fault injection requires the dense routing backend, got %q for %d routers (incremental rerouting repairs a materialized matrix)", s.Routing.Resolve(s.Topology.N()), s.Topology.N())
	case s.HeartbeatInterval < 0:
		return fmt.Errorf("sim: negative heartbeat interval %v", s.HeartbeatInterval)
	case s.HeartbeatMisses < 0:
		return fmt.Errorf("sim: negative heartbeat miss threshold %d", s.HeartbeatMisses)
	case s.StalenessBound < 0:
		return fmt.Errorf("sim: negative staleness bound %v", s.StalenessBound)
	case s.Shards < 0:
		return fmt.Errorf("sim: negative shard count %d", s.Shards)
	}
	if s.Chaos != nil {
		if _, err := s.Chaos.Compile(s.Topology); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if s.Chaos.HasCoordinationFailures() && s.Policy != PolicyCoordinated {
			return fmt.Errorf("sim: chaos coordination failures require the coordinated policy")
		}
		if s.Chaos.FlashCrowd != nil {
			if s.WorkloadFactory != nil {
				return fmt.Errorf("sim: chaos flash crowd conflicts with a custom workload factory")
			}
			if s.Chaos.FlashCrowd.Rank > s.CatalogSize {
				return fmt.Errorf("sim: chaos flash crowd rank %d exceeds catalog size %d", s.Chaos.FlashCrowd.Rank, s.CatalogSize)
			}
		}
	}
	if s.CheckpointPath != "" && (s.Chaos == nil || len(s.Chaos.Coordinator) == 0) {
		return fmt.Errorf("sim: checkpointing requires a chaos scenario with coordinator outages")
	}
	if s.faultsEnabled() {
		sched, err := fault.Scripted(s.FaultScript...)
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if err := sched.Validate(s.Topology.N()); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// Result aggregates the measured behavior of one run.
type Result struct {
	Policy   Policy
	Requests int

	OriginLoad float64 // fraction of requests served by the origin
	LocalHit   float64 // fraction served from the first-hop router
	PeerHit    float64 // fraction served by another router

	MeanLatency float64 // client-observed, ms
	MeanHops    float64 // network links between server and first-hop router

	// LatencyP50, LatencyP95 and LatencyP99 are client-latency quantile
	// estimates (ms) over the measured requests.
	LatencyP50 float64
	LatencyP95 float64
	LatencyP99 float64

	// TierLatency holds the measured mean latency per serving tier —
	// the empirical d0, d1, d2 of the analytical model. Entries are 0
	// when the tier served no requests.
	TierLatency TierLatencies

	// PeerHops is the mean hop count among peer-served requests only
	// (0 when there were none) — the distance cost of the coordinated
	// placement.
	PeerHops float64
	// PeerLoadImbalance is the max/mean ratio of per-router
	// peer-serving counts (1 = perfectly balanced, 0 when no peer
	// traffic); it quantifies how evenly an assignment spreads load.
	PeerLoadImbalance float64

	// Coordination cost, measured by the protocol (PolicyCoordinated
	// only): content-state messages exchanged to install the placement.
	CoordMessages    int64
	CoordConvergence float64

	InterestTransmissions int64
	DataTransmissions     int64

	// Loss-process activity (zero on lossless fabrics).
	DroppedInterests int64
	DroppedData      int64
	Retransmissions  int64

	// Link-queueing activity (zero on infinite-capacity fabrics).
	MeanQueueingDelay float64
	QueuedPackets     int64

	// Reports holds per-router request counts (measured requests only)
	// when Scenario.CollectReports is set; otherwise nil. It is the
	// input the coordination protocol consumes.
	Reports []coord.Report

	// Fault-experiment outcomes (zero when the scenario injects no
	// faults).

	// FailedRequests counts measured requests the network gave up on
	// after exhausting the retry budget; Availability is the fraction
	// of measured requests served (1 with no failures).
	FailedRequests int64
	Availability   float64
	// FaultDrops counts packets dropped at down links or crashed
	// routers; ExpiredInterests counts PIT entries that exhausted their
	// retry budget; RouteRecomputes counts forwarding-table rebuilds
	// after topology transitions.
	FaultDrops       int64
	ExpiredInterests int64
	RouteRecomputes  int64
	// RouterDowntime is the wall-clock time (ms) during which at least
	// one router was down (overlapping outages merged).
	RouterDowntime float64

	// Coordination failover cost and outcome (PolicyCoordinated under
	// faults): heartbeat traffic, repair traffic (W_repair: one
	// directive plus one transfer per moved content), the repair log,
	// and the mean crash-to-repair delay over repaired routers.
	HeartbeatMessages int64
	RepairMessages    int64
	Repairs           []RepairEvent
	MeanTimeToRepair  float64

	// Chaos outcomes (zero when the scenario runs no chaos).

	// CoordOutages is how many coordinator outage windows began;
	// CoordDowntime is their total duration (ms, clipped to the run).
	CoordOutages  int
	CoordDowntime float64
	// DegradedTime is the total time (ms) the data plane ran in
	// autonomous degraded mode; DegradedServes counts interests served
	// from degraded overlay stores; StalePlacementHits counts interests
	// forwarded on placements marked stale.
	DegradedTime       float64
	DegradedServes     int64
	StalePlacementHits int64
	// DegradedRequests counts measured requests completing while the
	// plane was degraded; DegradedOriginLoad is the origin-served
	// fraction among them (0 when there were none) — the hit-rate cost
	// of losing coordination.
	DegradedRequests   int64
	DegradedOriginLoad float64
	// ReconvergeMoves counts overlay entries flushed when degraded mode
	// exited (the re-convergence churn); MeanTimeToReconverge is the
	// mean time (ms) from a coordinator crash until the placement was
	// fully re-converged — the restart instant, or later when routers
	// crashed undetected during the outage and repair had to catch up.
	ReconvergeMoves      int64
	MeanTimeToReconverge float64

	// OutageOriginLoad and SteadyOriginLoad split the origin-served
	// fraction by whether any fault was active when the request
	// completed — the excess origin load an outage induces. Each is 0
	// when its window saw no completions.
	OutageOriginLoad float64
	SteadyOriginLoad float64

	// Manifest is the run's observability manifest, populated only when
	// Scenario.EmitManifest is set.
	Manifest *RunManifest
}

// RepairEvent records one failure detection and the repair pass it
// triggered.
type RepairEvent struct {
	Router     topology.NodeID // the router declared dead
	CrashedAt  float64         // when it actually went down
	DetectedAt float64         // when the detector declared it
	Moved      int             // contents reassigned onto survivors
	Messages   int64           // repair messages (directives + transfers)
}

// TierLatencies are the measured mean latencies of the three serving
// tiers (the model's d0, d1, d2).
type TierLatencies struct {
	Local  float64 // served by the first-hop router
	Peer   float64 // served by another router in the domain
	Origin float64 // served by the origin server
}

// Gamma returns the measured tiered latency ratio
// (d2-d1)/(d1-d0), or 0 if any tier lacks samples or the ordering
// degenerates.
func (t TierLatencies) Gamma() float64 {
	if t.Local <= 0 || t.Peer <= t.Local || t.Origin < t.Peer {
		return 0
	}
	return (t.Origin - t.Peer) / (t.Peer - t.Local)
}

// Run executes the scenario and returns the measured result. Scenarios
// resolving to more than one shard (see Scenario.Shards and
// ResolveShards) execute on the conservative parallel engine; everything
// else runs on the single-threaded engine. Either way the measured
// Result is identical — sharding changes wall-clock time, not outcomes.
func Run(sc Scenario) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	p, fallback := ResolveShardsReason(sc)
	if p > 1 {
		return runSharded(sc, p)
	}
	sc.shardFallbackReason = fallback
	return runSerial(sc)
}

// runSerial executes the (already validated) scenario on the
// single-threaded engine.
func runSerial(sc Scenario) (Result, error) {
	eng := &des.Engine{}
	cat, err := catalog.New(sc.CatalogSize, "/sim")
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	// Expand the chaos scenario against the topology up front; Validate
	// already proved it compiles.
	var chaos *fault.CompiledChaos
	if sc.Chaos != nil {
		chaos, err = sc.Chaos.Compile(sc.Topology)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
	}

	res := Result{Policy: sc.Policy}

	// Provision stores and optional directory according to the policy.
	routers := make([]topology.NodeID, sc.Topology.N())
	for i := range routers {
		routers[i] = topology.NodeID(i)
	}
	prov, err := provisionPolicy(sc, routers, &res)
	if err != nil {
		return Result{}, err
	}
	directory, coordAsg, localSet := prov.directory, prov.coordAsg, prov.localSet
	mode, stores, capOf := prov.mode, prov.stores, prov.capOf

	// Degraded-mode overlays: plain LRU stores of each router's full
	// capacity, built lazily only if the plane ever actually degrades.
	var degradedStores func(topology.NodeID) (cache.Store, error)
	if chaos != nil {
		degradedStores = func(r topology.NodeID) (cache.Store, error) {
			c := int(capOf(r))
			if c < 1 {
				c = 1
			}
			return cache.NewLRU(c)
		}
	}

	net, err := ccn.NewNetwork(eng, sc.Topology, cat, ccn.Options{
		AccessLatency:    sc.AccessLatency,
		Stores:           stores,
		Mode:             mode,
		Directory:        directory,
		DegradedStores:   degradedStores,
		LossRate:         sc.LossRate,
		RetxTimeout:      sc.RetxTimeout,
		LossSeed:         sc.Seed + 7,
		CacheProbability: probCacheAdmission,
		LinkRate:         sc.LinkRate,
		Faults:           sc.faultsEnabled(),
		Tracer:           sc.Tracer,
		Routing:          sc.Routing,
	})
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if sc.OriginGateway >= 0 {
		err = net.AttachOriginAt(sc.OriginGateway, sc.OriginLatency)
	} else {
		err = net.AttachOriginUniform(sc.OriginLatency)
	}
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	// Per-router workloads and Poisson arrival processes. Arrivals are
	// scheduled lazily: one self-rescheduling event per router draws the
	// next inter-arrival gap and content when it fires, so the pending
	// event count stays O(routers + in-flight) instead of O(total
	// requests) — the request pre-materialization loop this replaces put
	// one heap closure per request on the event queue up front.
	interArrival := sc.MeanInterArrival
	if interArrival <= 0 {
		interArrival = 1
	}
	total := sc.Requests + sc.Warmup
	perRouter := total / len(routers)
	extra := total % len(routers)
	warmPerRouter := sc.Warmup / len(routers)
	warmExtra := sc.Warmup % len(routers)
	// reqsOf returns router i's request and warmup quota.
	reqsOf := func(i int) (nReq, nWarm int) {
		nReq = perRouter
		if i < extra {
			nReq++
		}
		nWarm = warmPerRouter
		if i < warmExtra {
			nWarm++
		}
		return nReq, nWarm
	}

	// The run's scalar aggregates live in a named registry so the
	// manifest can snapshot them all at once; the hot path holds direct
	// pointers, so the registry costs nothing per request.
	reg := metrics.NewRegistry()
	latency := reg.Mean("latency_ms")
	hops := reg.Mean("hops")
	peerHops := reg.Mean("peer_hops")
	tierLat := [3]*metrics.Mean{
		reg.Mean("tier_latency_local_ms"),
		reg.Mean("tier_latency_peer_ms"),
		reg.Mean("tier_latency_origin_ms"),
	}
	// The histogram range covers the worst possible round trip — the
	// leading 2 converts the one-way sum (access latency + there-and-back
	// network diameter + origin uplink) to a round trip, and rttHeadroom
	// widens it for retransmission delays. Samples past the headroom
	// (deep retry backoff) land in the histogram's overflow counter and
	// saturate quantile estimates at the range edge instead of skewing
	// them. net.Routes() is the routing backend the network forwards
	// with (NewNetwork ran first): on the dense backend MaxDist reads
	// the same cached matrix as before, and on sparse backends it
	// avoids materializing an O(n²) matrix just for this scalar.
	maxRTT := 2 * (sc.AccessLatency + 2*net.Routes().MaxDist() + sc.OriginLatency) * rttHeadroom
	latencyHist, err := reg.Histogram("latency_ms", 0, math.Max(maxRTT, 1), 2048)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	counts := reg.Counter("served_by")
	peerServes := make(map[topology.NodeID]int64)
	var reportCounts []map[catalog.ID]int64
	if sc.CollectReports {
		reportCounts = make([]map[catalog.ID]int64, len(routers))
		for i := range reportCounts {
			reportCounts[i] = make(map[catalog.ID]int64)
		}
	}
	measured := 0

	// Fault accounting. inj is assigned after the arrival processes are
	// laid out (the stochastic horizon needs the last arrival time) but
	// before eng.Run, so the completion callbacks below may consult it.
	var inj *fault.Injector
	var avail metrics.Availability
	var downtime metrics.Downtime
	var outageOrigin, outageTotal, steadyOrigin, steadyTotal int64
	// chaosRT tracks the chaos scenario's coordination timeline; it is
	// installed with the fault machinery but consulted by the completion
	// callback, so it is declared here.
	var chaosRT *chaosRuntime

	// runErr records the first data-plane wiring failure hit inside a
	// scheduled callback; it stops the arrival streams and fails the run
	// instead of panicking out of the event loop.
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	// The completion callbacks are shared across all requests: warmup
	// completions are discarded wholesale, measured ones feed the
	// aggregators. Sharing them keeps the per-request allocation cost at
	// zero closures.
	warmCB := func(ccn.RequestResult) {}
	measuredCB := func(result ccn.RequestResult) {
		measured++
		if sc.Observer != nil {
			sc.Observer(result)
		}
		if sc.Tracer != nil {
			detail := ""
			if result.Failed {
				detail = "failed"
			}
			sc.Tracer.Emit(trace.Event{
				T:       result.CompletedAt,
				Kind:    trace.KindRequest,
				Router:  int(result.Router),
				Content: int64(result.Content),
				Hops:    result.Hops,
				Tier:    result.ServedBy.String(),
				Detail:  detail,
				Req:     result.Req,
			})
		}
		counts.Inc(result.ServedBy.String())
		if chaosRT != nil && net.Degraded() {
			chaosRT.degTotal++
			if result.ServedBy == ccn.ServedOrigin {
				chaosRT.degOrigin++
			}
		}
		if inj != nil {
			if inj.ActiveFaults() > 0 {
				outageTotal++
				if result.ServedBy == ccn.ServedOrigin {
					outageOrigin++
				}
			} else {
				steadyTotal++
				if result.ServedBy == ccn.ServedOrigin {
					steadyOrigin++
				}
			}
		}
		if result.Failed {
			avail.ObserveFailed()
			return
		}
		avail.ObserveOK()
		latency.Observe(result.Latency())
		latencyHist.Observe(result.Latency())
		hops.Observe(float64(result.Hops))
		tierLat[int(result.ServedBy)].Observe(result.Latency())
		if result.ServedBy == ccn.ServedPeer {
			peerHops.Observe(float64(result.Hops))
			peerServes[result.Server]++
		}
		if reportCounts != nil {
			reportCounts[result.Router][result.Content]++
		}
	}

	// The default stationary workload shares one immutable Zipf
	// distribution across routers — the per-(s, N) sampler setup is paid
	// once, and per-router generators differ only in their RNG stream.
	var family *workload.ZipfFamily
	if sc.WorkloadFactory == nil {
		family, err = workload.NewZipfFamily(sc.ZipfS, sc.CatalogSize)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
	}

	// issue fires one arrival of p: draw the content (the k-th gen.Next
	// call, exactly as the eager layout drew it), issue the request, and
	// reschedule the router's single arrival event for the next draw.
	// Per-router arrivals are time-ordered, so the first nWarm requests
	// of each router form the warmup phase.
	var issue func(p *arrivalProc)
	issue = func(p *arrivalProc) {
		if runErr != nil {
			return // the run already failed; let the queue drain quietly
		}
		id := p.gen.Next()
		measuredReq := p.k >= p.nWarm
		cb := measuredCB
		if !measuredReq {
			cb = warmCB
		}
		p.k++
		req, err := net.RequestID(p.router, id, cb)
		if err != nil {
			fail(fmt.Errorf("sim: issuing request at router %d: %w", p.router, err))
			return
		}
		// Anchor the request's span at its issue time. Warmup requests
		// still consume IDs but are deliberately unanchored: span
		// reconstruction treats ID groups without an issue event as
		// orphans, keeping measured-span counts aligned with Requests.
		if measuredReq && sc.Tracer != nil {
			sc.Tracer.Emit(trace.Event{T: eng.Now(), Kind: trace.KindIssue, Router: int(p.router), Content: int64(id), Req: req})
		}
		if p.k < p.nReq {
			p.t += p.rng.ExpFloat64() * interArrival
			if err := eng.At(p.t, p.tick); err != nil {
				fail(fmt.Errorf("sim: scheduling request: %w", err))
			}
		}
	}

	for i, r := range routers {
		var gen workload.Generator
		var err error
		if sc.WorkloadFactory != nil {
			gen, err = sc.WorkloadFactory(r)
		} else {
			gen, err = family.Gen(WorkloadSeed(sc.Seed, i))
		}
		if err != nil {
			return Result{}, fmt.Errorf("sim: workload for router %d: %w", r, err)
		}
		if gen == nil {
			return Result{}, fmt.Errorf("sim: nil workload generator for router %d", r)
		}
		if chaos != nil && chaos.FlashCrowd != nil {
			gen, err = workload.NewFlashCrowd(gen, chaos.FlashCrowd.AfterRequests, chaos.FlashCrowd.Rank, sc.CatalogSize)
			if err != nil {
				return Result{}, fmt.Errorf("sim: flash crowd for router %d: %w", r, err)
			}
		}
		nReq, nWarm := reqsOf(i)
		if nReq == 0 {
			continue
		}
		p := &arrivalProc{
			router: r,
			gen:    gen,
			rng:    rand.New(rand.NewSource(ArrivalSeed(sc.Seed, i))),
			nReq:   nReq,
			nWarm:  nWarm,
		}
		p.tick = func() { issue(p) }
		p.t = p.rng.ExpFloat64() * interArrival
		if err := eng.At(p.t, p.tick); err != nil {
			return Result{}, fmt.Errorf("sim: scheduling request: %w", err)
		}
	}

	// The stochastic fault horizon needs the time of the last arrival,
	// which lazy scheduling no longer materializes up front. Replay each
	// router's arrival clock on a scratch RNG seeded identically —
	// allocation-free and exact, and only paid on fault runs.
	maxArrival := 0.0
	if sc.faultsEnabled() {
		for i := range routers {
			nReq, _ := reqsOf(i)
			rng := rand.New(rand.NewSource(ArrivalSeed(sc.Seed, i)))
			t := 0.0
			for k := 0; k < nReq; k++ {
				t += rng.ExpFloat64() * interArrival
			}
			if t > maxArrival {
				maxArrival = t
			}
		}
	}

	// Install the fault timeline and, for the coordinated policy, the
	// coordinator's failure detector + repair pass.
	var det *coord.Detector
	var repairs []RepairEvent
	var repairMessages int64
	if sc.faultsEnabled() {
		horizon := math.Max(maxArrival, 1)
		events := append([]fault.Event(nil), sc.FaultScript...)
		if chaos != nil {
			events = append(events, chaos.Events...)
		}
		if sc.MTBF > 0 {
			st, err := fault.Stochastic(fault.StochasticConfig{
				MTBF:    sc.MTBF,
				MTTR:    sc.MTTR,
				Horizon: horizon,
				Seed:    sc.FaultSeed,
				Routers: routers,
			})
			if err != nil {
				return Result{}, fmt.Errorf("sim: %w", err)
			}
			events = append(events, st.Events()...)
		}
		sched, err := fault.Scripted(events...)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
		if err := sched.Validate(len(routers)); err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
		inj, err = fault.NewInjector(eng, sched, net)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
		// Track merged router downtime; the injector applies redundant
		// events idempotently, so mirror its state transitions here.
		downNow := make(map[topology.NodeID]bool)
		inj.OnEvent = func(e fault.Event) {
			switch e.Kind {
			case fault.RouterDown:
				if !downNow[e.Node] {
					downNow[e.Node] = true
					downtime.Down(eng.Now())
				}
			case fault.RouterUp:
				if downNow[e.Node] {
					delete(downNow, e.Node)
					downtime.Up(eng.Now())
				}
			}
		}
		if err := inj.Install(); err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}

		if coordAsg != nil {
			hbInterval := sc.HeartbeatInterval
			if hbInterval == 0 {
				hbInterval = DefaultHeartbeatInterval
			}
			hbMisses := sc.HeartbeatMisses
			if hbMisses == 0 {
				hbMisses = DefaultHeartbeatMisses
			}
			det, err = coord.NewDetector(routers, hbInterval, hbMisses)
			if err != nil {
				return Result{}, fmt.Errorf("sim: %w", err)
			}
			det.Alive = inj.RouterAlive
			if sc.Tracer != nil {
				det.OnProbe = func(r topology.NodeID, at float64, alive bool) {
					var ok int64
					if alive {
						ok = 1
					}
					sc.Tracer.Emit(trace.Event{T: at, Kind: trace.KindHeartbeat, Router: int(r), N: ok})
				}
			}
			det.OnDown = func(dead topology.NodeID, at float64, survivors []topology.NodeID) {
				ev := RepairEvent{Router: dead, CrashedAt: at, DetectedAt: at}
				if t0, ok := inj.DownSince(dead); ok {
					ev.CrashedAt = t0
				}
				if len(survivors) > 0 {
					moved, err := coordAsg.Reassign(dead, survivors)
					if err != nil {
						fail(fmt.Errorf("sim: repairing assignment: %w", err))
						return
					}
					cost := coord.CostOfRepair(moved)
					ev.Moved = cost.Moved
					ev.Messages = cost.Total()
					repairMessages += cost.Total()
					// Install the repaired stripes so survivors actually
					// serve the contents they absorbed.
					for _, s := range survivors {
						st, err := net.Store(s)
						if err != nil {
							fail(fmt.Errorf("sim: repairing store %d: %w", s, err))
							return
						}
						part, ok := st.(*cache.Partitioned)
						if !ok {
							continue
						}
						repaired, err := cache.NewStatic(coordAsg.Contents(s))
						if err != nil {
							fail(fmt.Errorf("sim: repairing store %d: %w", s, err))
							return
						}
						part.Coordinated = repaired
					}
				}
				repairs = append(repairs, ev)
				if sc.Tracer != nil {
					sc.Tracer.Emit(trace.Event{T: at, Kind: trace.KindRepair, Router: int(dead), N: int64(ev.Moved)})
				}
			}
			if err := det.Start(eng, horizon); err != nil {
				return Result{}, fmt.Errorf("sim: %w", err)
			}
		}

		if chaos != nil {
			chaosRT, err = installChaos(chaosEnv{
				eng:      eng,
				net:      net,
				det:      det,
				inj:      inj,
				coordAsg: coordAsg,
				localSet: localSet,
				routers:  routers,
				sc:       sc,
				chaos:    chaos,
				fail:     fail,
			})
			if err != nil {
				return Result{}, err
			}
		}
	}

	eng.Run()

	if runErr != nil {
		return Result{}, runErr
	}
	if measured == 0 {
		return Result{}, fmt.Errorf("sim: no measured requests completed")
	}
	res.Requests = measured
	res.OriginLoad = float64(counts.Get("origin")) / float64(measured)
	res.LocalHit = float64(counts.Get("local")) / float64(measured)
	res.PeerHit = float64(counts.Get("peer")) / float64(measured)
	res.MeanLatency = latency.Value()
	res.LatencyP50 = latencyHist.Quantile(0.50)
	res.LatencyP95 = latencyHist.Quantile(0.95)
	res.LatencyP99 = latencyHist.Quantile(0.99)
	res.MeanHops = hops.Value()
	res.TierLatency = TierLatencies{
		Local:  tierLat[int(ccn.ServedLocal)].Value(),
		Peer:   tierLat[int(ccn.ServedPeer)].Value(),
		Origin: tierLat[int(ccn.ServedOrigin)].Value(),
	}
	res.PeerHops = peerHops.Value()
	if len(peerServes) > 0 {
		var total, worst int64
		for _, c := range peerServes {
			total += c
			if c > worst {
				worst = c
			}
		}
		mean := float64(total) / float64(len(peerServes))
		res.PeerLoadImbalance = float64(worst) / mean
	}
	res.InterestTransmissions = net.InterestTransmissions()
	res.DataTransmissions = net.DataTransmissions()
	res.DroppedInterests = net.DroppedInterests()
	res.DroppedData = net.DroppedData()
	res.Retransmissions = net.Retransmissions()
	res.MeanQueueingDelay = net.MeanQueueingDelay()
	res.QueuedPackets = net.QueuedPackets()
	res.FailedRequests = net.FailedRequests()
	res.Availability = avail.Value()
	res.FaultDrops = net.FaultDrops()
	res.ExpiredInterests = net.ExpiredInterests()
	res.RouteRecomputes = net.RouteRecomputes()
	if inj != nil {
		res.RouterDowntime = downtime.Total(eng.Now())
	}
	if det != nil {
		res.HeartbeatMessages = det.Heartbeats()
	}
	res.Repairs = repairs
	res.RepairMessages = repairMessages
	if len(repairs) > 0 {
		var sum float64
		for _, ev := range repairs {
			sum += ev.DetectedAt - ev.CrashedAt
		}
		res.MeanTimeToRepair = sum / float64(len(repairs))
	}
	if outageTotal > 0 {
		res.OutageOriginLoad = float64(outageOrigin) / float64(outageTotal)
	}
	if steadyTotal > 0 {
		res.SteadyOriginLoad = float64(steadyOrigin) / float64(steadyTotal)
	}
	if chaosRT != nil {
		chaosRT.finish(eng.Now(), net)
		res.CoordOutages = chaosRT.outages
		res.CoordDowntime = chaosRT.coordDowntime
		res.DegradedTime = chaosRT.degradedMs
		res.DegradedServes = net.DegradedServes()
		res.StalePlacementHits = net.StalePlacementHits()
		res.DegradedRequests = chaosRT.degTotal
		if chaosRT.degTotal > 0 {
			res.DegradedOriginLoad = float64(chaosRT.degOrigin) / float64(chaosRT.degTotal)
		}
		res.ReconvergeMoves = chaosRT.moves
		if chaosRT.ttrN > 0 {
			res.MeanTimeToReconverge = chaosRT.ttrSum / float64(chaosRT.ttrN)
		}
		// Chaos metrics enter the registry (and thus the manifest and
		// the Prometheus exposition) only on chaos runs, so non-chaos
		// manifests keep their exact prior byte layout.
		reg.Mean("degraded_seconds").Observe(res.DegradedTime / 1000)
		reg.Counter("stale_placement_hits").Add("total", res.StalePlacementHits)
		reg.Counter("reconverge_moves").Add("total", res.ReconvergeMoves)
	}
	if reportCounts != nil {
		res.Reports = make([]coord.Report, len(routers))
		for i, r := range routers {
			res.Reports[i] = coord.Report{Router: r, Counts: reportCounts[i]}
		}
	}
	if sc.EmitManifest {
		res.Manifest = buildManifest(sc, res, ManifestEngine{
			EventsProcessed:     eng.Processed(),
			PendingPeak:         eng.PendingPeak(),
			Shards:              1,
			ShardFallbackReason: sc.shardFallbackReason,
		}, net, reg, avail.Snapshot())
	}
	return res, nil
}

// arrivalProc is one router's self-rescheduling Poisson arrival process.
// Exactly one event per process is pending at any time; tick is the
// single closure the process reschedules, so steady-state arrival
// scheduling allocates nothing per request.
type arrivalProc struct {
	router topology.NodeID
	gen    workload.Generator
	rng    *rand.Rand // arrival clock; draws one ExpFloat64 per request
	tick   func()
	t      float64 // absolute time of the pending arrival
	k      int     // requests issued so far
	nReq   int     // total requests to issue
	nWarm  int     // leading unmeasured requests
}

// min64 returns the smaller of a and b.
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// probCacheAdmission is the per-router admission probability used by
// PolicyProbCache.
const probCacheAdmission = 0.3

// rttHeadroom is the safety factor widening the latency histogram's
// range beyond the worst possible first-try round trip. Retransmission
// backoff on lossy or faulty fabrics can stretch a request past the
// geometric worst case; a factor of 2 keeps typical retry tails inside
// the histogram while anything deeper lands in the overflow counter
// (counted, and clamped to the range edge in quantile estimates) rather
// than stretching every bucket.
const rttHeadroom = 2
