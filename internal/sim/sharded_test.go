package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"ccncoord/internal/ccn"
	"ccncoord/internal/fault"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
	"ccncoord/internal/workload"
)

// TestRunShardedMatchesSerial is the tentpole determinism guarantee:
// the same scenario run serially and on 4 shards must produce identical
// Results — every float bit — identical observer streams (completion
// order included), and byte-identical manifests outside the Engine
// gauges (PendingPeak is approximated under sharding).
func TestRunShardedMatchesSerial(t *testing.T) {
	for _, policy := range []Policy{PolicyCoordinated, PolicyLRU} {
		var results []Result
		var manifests [][]byte
		var observed [][]ccn.RequestResult
		var engines []ManifestEngine
		for _, shards := range []int{1, 4} {
			var seen []ccn.RequestResult
			sc := testScenario()
			sc.Policy = policy
			if policy == PolicyLRU {
				// Uniform origin uplinks plus no directory would keep every
				// packet shard-local; attach the origin behind one gateway
				// so the LRU case exercises cross-shard forwarding.
				sc.OriginGateway = 0
			}
			sc.Requests = 20000
			sc.Warmup = 2000
			sc.Shards = shards
			sc.CollectReports = true
			sc.EmitManifest = true
			sc.Observer = func(r ccn.RequestResult) { seen = append(seen, r) }
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("%v shards=%d: %v", policy, shards, err)
			}
			engines = append(engines, res.Manifest.Engine)
			// Blank the engine gauges before serializing: PendingPeak is
			// exact serially but a lower bound under sharding, and the
			// shard gauges differ by construction. Everything else in the
			// manifest must match to the byte.
			res.Manifest.Engine = ManifestEngine{}
			var buf bytes.Buffer
			if err := res.Manifest.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			manifests = append(manifests, buf.Bytes())
			res.Manifest = nil
			results = append(results, res)
			observed = append(observed, seen)
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Errorf("%v: serial and sharded results differ:\nserial:  %+v\nsharded: %+v", policy, results[0], results[1])
		}
		if !bytes.Equal(manifests[0], manifests[1]) {
			t.Errorf("%v: serial and sharded manifests are not byte-identical outside engine gauges", policy)
		}
		if !reflect.DeepEqual(observed[0], observed[1]) {
			t.Errorf("%v: observer streams differ (completion order is not deterministic)", policy)
		}
		// The event set is identical — sharding moves events between
		// loops, it never adds or drops any.
		if engines[0].EventsProcessed != engines[1].EventsProcessed {
			t.Errorf("%v: events processed differ: serial %d, sharded %d", policy, engines[0].EventsProcessed, engines[1].EventsProcessed)
		}
		if engines[0].Shards != 1 || engines[0].CrossShardEvents != 0 {
			t.Errorf("%v: serial engine gauges = %+v, want 1 shard and 0 cross-shard events", policy, engines[0])
		}
		if engines[1].Shards != 4 {
			t.Errorf("%v: sharded run reports %d shards, want 4", policy, engines[1].Shards)
		}
		if engines[1].CrossShardEvents == 0 {
			t.Errorf("%v: sharded run reports no cross-shard events on a connected topology", policy)
		}
	}
}

// TestResolveShards pins the shard-count resolution rules: explicit
// counts honored and clamped, the auto rule's dense threshold, and the
// serial fallback for every non-shardable feature.
func TestResolveShards(t *testing.T) {
	base := testScenario()
	if got := ResolveShards(base); got != 1 {
		t.Errorf("auto on %d routers = %d shards, want 1 (below threshold)", base.Topology.N(), got)
	}
	explicit := base
	explicit.Shards = 4
	if got := ResolveShards(explicit); got != 4 {
		t.Errorf("explicit 4 shards resolved to %d", got)
	}
	clamped := base
	clamped.Shards = 10 * base.Topology.N()
	if got := ResolveShards(clamped); got != base.Topology.N() {
		t.Errorf("oversized request resolved to %d shards, want clamp to %d routers", got, base.Topology.N())
	}

	// Above the dense threshold the auto rule engages.
	levels, err := topology.ParseHierSpec("4,8,40", "20,5,1", "1,1,0")
	if err != nil {
		t.Fatal(err)
	}
	big, err := topology.Hierarchical("auto-test", levels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if big.N() < topology.DenseAutoThreshold {
		t.Fatalf("test graph has %d routers, need >= %d", big.N(), topology.DenseAutoThreshold)
	}
	auto := base
	auto.Topology = big
	want := runtime.GOMAXPROCS(0)
	if want > maxAutoShards {
		want = maxAutoShards
	}
	if want < 2 {
		want = 1 // single-core machines stay serial
	}
	if got := ResolveShards(auto); got != want {
		t.Errorf("auto on %d routers = %d shards, want %d", big.N(), got, want)
	}

	// Every non-shardable feature forces serial even when asked.
	cases := map[string]func(*Scenario){
		"loss":      func(s *Scenario) { s.LossRate = 0.1; s.RetxTimeout = 300 },
		"link rate": func(s *Scenario) { s.LinkRate = 1 },
		"faults": func(s *Scenario) {
			s.RetxTimeout = 300
			s.FaultScript = []fault.Event{{At: 10, Kind: fault.RouterDown, Node: 1}}
		},
		"tracer":    func(s *Scenario) { s.Tracer = &trace.Tracer{} },
		"probcache": func(s *Scenario) { s.Policy = PolicyProbCache },
		"wl factory": func(s *Scenario) {
			s.WorkloadFactory = func(topology.NodeID) (workload.Generator, error) { return nil, nil }
		},
	}
	for name, mutate := range cases {
		sc := testScenario()
		sc.Shards = 4
		mutate(&sc)
		if got := ResolveShards(sc); got != 1 {
			t.Errorf("%s: resolved to %d shards, want serial fallback", name, got)
		}
	}

	neg := testScenario()
	neg.Shards = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative shard count passed validation")
	}
}

// TestRttHeadroomPinned pins the latency histogram's range to the
// documented formula: a full round trip over the worst path — access
// hop, network diameter there and back, origin uplink — widened by
// rttHeadroom for retransmission tails.
func TestRttHeadroomPinned(t *testing.T) {
	sc := testScenario()
	sc.Requests = 2000
	sc.EmitManifest = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	hist, ok := res.Manifest.Metrics.Histograms["latency_ms"]
	if !ok {
		t.Fatal("manifest has no latency histogram")
	}
	maxDist := sc.Topology.ShortestPathsLatency().MaxDist()
	want := 2 * (sc.AccessLatency + 2*maxDist + sc.OriginLatency) * rttHeadroom
	if hist.Hi != want {
		t.Errorf("latency histogram range = %v, want 2*(access + 2*diameter + origin)*%d = %v", hist.Hi, rttHeadroom, want)
	}
	if hist.Lo != 0 {
		t.Errorf("latency histogram starts at %v, want 0", hist.Lo)
	}
}
