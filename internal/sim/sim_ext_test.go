package sim

import (
	"math"
	"reflect"
	"testing"
)

func TestAssignmentString(t *testing.T) {
	if AssignStripe.String() != "stripe" || AssignHash.String() != "hash" {
		t.Error("assignment names wrong")
	}
	if Assignment(7).String() == "" {
		t.Error("unknown assignment should still format")
	}
}

func TestInvalidAssignmentRejected(t *testing.T) {
	sc := testScenario()
	sc.Assignment = Assignment(9)
	if err := sc.Validate(); err == nil {
		t.Error("unknown assignment should fail validation")
	}
}

// TestHashAssignmentSameOriginLoad: the assignment strategy changes who
// stores what, not what is stored — origin load must be identical to
// striping, while the popularity balance may differ.
func TestHashAssignmentSameOriginLoad(t *testing.T) {
	sc := testScenario()
	sc.Requests = 30000
	stripe, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Assignment = AssignHash
	hash, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stripe.OriginLoad-hash.OriginLoad) > 1e-12 {
		t.Errorf("origin load differs: stripe %v vs hash %v", stripe.OriginLoad, hash.OriginLoad)
	}
	if stripe.PeerHit == 0 || hash.PeerHit == 0 {
		t.Error("both assignments should produce peer traffic")
	}
}

func TestHashAssignmentRejectsHeterogeneous(t *testing.T) {
	sc := testScenario()
	sc.Assignment = AssignHash
	caps := make([]int64, sc.Topology.N())
	for i := range caps {
		caps[i] = sc.Capacity
	}
	sc.Capacities = caps
	if _, err := Run(sc); err == nil {
		t.Error("hash assignment with per-router capacities should fail")
	}
}

func TestPeerMetricsPopulated(t *testing.T) {
	sc := testScenario()
	sc.Requests = 20000
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeerHops < 1 {
		t.Errorf("PeerHops = %v, want >= 1 (peer service crosses links)", res.PeerHops)
	}
	if res.PeerLoadImbalance < 1 {
		t.Errorf("PeerLoadImbalance = %v, want >= 1", res.PeerLoadImbalance)
	}
	// Without coordination there is no peer traffic and the metrics stay
	// zero.
	sc.Policy = PolicyNonCoordinated
	res, err = Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeerHops != 0 || res.PeerLoadImbalance != 0 {
		t.Errorf("non-coordinated peer metrics = %v/%v, want 0/0", res.PeerHops, res.PeerLoadImbalance)
	}
}

func TestHeterogeneousCapacitiesValidation(t *testing.T) {
	sc := testScenario()
	sc.Capacities = []int64{100, 100} // wrong length
	if err := sc.Validate(); err == nil {
		t.Error("capacity length mismatch should fail")
	}
}

// TestHeterogeneousEqualMatchesUniform: per-router capacities equal to
// the uniform capacity must reproduce the uniform run exactly.
func TestHeterogeneousEqualMatchesUniform(t *testing.T) {
	sc := testScenario()
	sc.Requests = 10000
	uniform, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int64, sc.Topology.N())
	for i := range caps {
		caps[i] = sc.Capacity
	}
	sc.Capacities = caps
	hetero, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uniform, hetero) {
		t.Errorf("equal per-router capacities diverge from uniform:\n%+v\n%+v", uniform, hetero)
	}
}

// TestHeterogeneousBiggerRoutersHelp: doubling half the routers'
// capacity must not increase the origin load.
func TestHeterogeneousBiggerRoutersHelp(t *testing.T) {
	sc := testScenario()
	sc.Requests = 30000
	base, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int64, sc.Topology.N())
	for i := range caps {
		caps[i] = sc.Capacity
		if i%2 == 0 {
			caps[i] = sc.Capacity * 2
		}
	}
	sc.Capacities = caps
	bigger, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.OriginLoad > base.OriginLoad {
		t.Errorf("more storage raised origin load: %v -> %v", base.OriginLoad, bigger.OriginLoad)
	}
	if bigger.CoordMessages <= base.CoordMessages {
		t.Errorf("more coordinated slots should cost more messages: %d vs %d",
			bigger.CoordMessages, base.CoordMessages)
	}
}

func TestZeroCapacityNetwork(t *testing.T) {
	sc := testScenario()
	sc.Capacity = 0
	sc.Coordinated = 0
	sc.Policy = PolicyNonCoordinated
	sc.Requests = 5000
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginLoad != 1 {
		t.Errorf("storageless network origin load = %v, want 1", res.OriginLoad)
	}
	if res.LocalHit != 0 || res.PeerHit != 0 {
		t.Errorf("storageless network has hits: %v/%v", res.LocalHit, res.PeerHit)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	sc := testScenario()
	sc.Requests = 20000
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.LatencyP50 <= res.LatencyP95 && res.LatencyP95 <= res.LatencyP99) {
		t.Errorf("quantiles not ordered: p50=%v p95=%v p99=%v",
			res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	if res.LatencyP50 <= 0 {
		t.Errorf("p50 = %v, want > 0", res.LatencyP50)
	}
	// The mean lies within the distribution's bulk.
	if res.MeanLatency < res.LatencyP50/3 || res.MeanLatency > res.LatencyP99 {
		t.Errorf("mean %v inconsistent with quantiles [%v, %v]",
			res.MeanLatency, res.LatencyP50, res.LatencyP99)
	}
}

// TestTransmissionConservation property: in a lossless network with
// deterministic routing, every data transmission answers exactly one
// interest transmission.
func TestTransmissionConservation(t *testing.T) {
	for _, pol := range []Policy{PolicyNonCoordinated, PolicyCoordinated, PolicyLRU} {
		sc := testScenario()
		sc.Policy = pol
		sc.Requests = 10000
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.InterestTransmissions != res.DataTransmissions {
			t.Errorf("%v: interest tx %d != data tx %d", pol,
				res.InterestTransmissions, res.DataTransmissions)
		}
	}
}

func TestLossyScenario(t *testing.T) {
	sc := testScenario()
	sc.Requests = 15000
	sc.LossRate = 0.1
	sc.RetxTimeout = 300
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != sc.Requests {
		t.Fatalf("only %d of %d requests completed under loss", res.Requests, sc.Requests)
	}
	if res.DroppedInterests+res.DroppedData == 0 || res.Retransmissions == 0 {
		t.Errorf("loss activity missing: drops %d/%d retx %d",
			res.DroppedInterests, res.DroppedData, res.Retransmissions)
	}
	// Origin load is a placement property, not a fabric property.
	lossless := sc
	lossless.LossRate, lossless.RetxTimeout = 0, 0
	base, err := Run(lossless)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.OriginLoad - base.OriginLoad; d > 0.02 || d < -0.02 {
		t.Errorf("origin load shifted under loss: %v vs %v", res.OriginLoad, base.OriginLoad)
	}
	if res.MeanLatency <= base.MeanLatency {
		t.Errorf("loss should raise latency: %v vs %v", res.MeanLatency, base.MeanLatency)
	}
	if err := func() error { sc := testScenario(); sc.LossRate = 0.5; return sc.Validate() }(); err == nil {
		t.Error("loss without retx timeout should fail validation")
	}
}

// TestTierLatenciesMatchPhysicalModel: the measured per-tier means are
// the model's d0, d1, d2; with a uniform origin uplink their values
// follow directly from the scenario's physical parameters.
func TestTierLatenciesMatchPhysicalModel(t *testing.T) {
	sc := testScenario()
	sc.Requests = 30000
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.TierLatency
	// d0 = 2 * access latency exactly.
	if math.Abs(tl.Local-2*sc.AccessLatency) > 1e-9 {
		t.Errorf("d0 = %v, want %v", tl.Local, 2*sc.AccessLatency)
	}
	// d2 ~= 2 * (access + uplink) under the uniform origin; PIT
	// aggregation lets some requests ride an in-flight fetch and finish
	// slightly sooner, so the mean sits just below the physical bound.
	want2 := 2 * (sc.AccessLatency + sc.OriginLatency)
	if tl.Origin > want2+1e-9 || tl.Origin < want2-2 {
		t.Errorf("d2 = %v, want ~%v", tl.Origin, want2)
	}
	// d1 sits strictly between them and gamma is positive and finite.
	if !(tl.Local < tl.Peer && tl.Peer < tl.Origin) {
		t.Errorf("tier ordering violated: %+v", tl)
	}
	if g := tl.Gamma(); !(g > 0) {
		t.Errorf("measured gamma = %v", g)
	}
}

func TestTierLatenciesGammaDegenerate(t *testing.T) {
	if g := (TierLatencies{}).Gamma(); g != 0 {
		t.Errorf("empty tiers gamma = %v, want 0", g)
	}
	if g := (TierLatencies{Local: 5, Peer: 3, Origin: 10}).Gamma(); g != 0 {
		t.Errorf("non-monotone tiers gamma = %v, want 0", g)
	}
}
