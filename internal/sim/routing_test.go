package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ccncoord/internal/fault"
	"ccncoord/internal/topology"
)

// TestRunDenseVsLRUByteIdentical runs one scenario under the dense and
// LRU routing backends and requires identical results down to the
// serialized manifest bytes: the data plane only consults Next, which
// the LRU backend answers bit-identically.
func TestRunDenseVsLRUByteIdentical(t *testing.T) {
	results := make([]Result, 0, 2)
	manifests := make([][]byte, 0, 2)
	for _, b := range []topology.Backend{topology.BackendDense, topology.BackendLRU} {
		sc := testScenario()
		sc.Requests = 8000
		sc.Routing = b
		sc.EmitManifest = true
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%v backend: %v", b, err)
		}
		var buf bytes.Buffer
		if err := res.Manifest.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		manifests = append(manifests, buf.Bytes())
		res.Manifest = nil
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("dense and LRU results differ:\ndense: %+v\nlru:   %+v", results[0], results[1])
	}
	if !bytes.Equal(manifests[0], manifests[1]) {
		t.Error("dense and LRU run manifests are not byte-identical")
	}
}

// TestValidateRejectsFaultsOnSparseBackends pins the early, clearly
// errored fallback for fault scenarios on sparse routing backends.
func TestValidateRejectsFaultsOnSparseBackends(t *testing.T) {
	for _, b := range []topology.Backend{topology.BackendLRU, topology.BackendLandmark} {
		sc := testScenario()
		sc.Routing = b
		sc.RetxTimeout = 300
		sc.FaultScript = []fault.Event{{At: 100, Kind: fault.RouterDown, Node: 1}}
		err := sc.Validate()
		if err == nil {
			t.Fatalf("faults with %v backend should fail validation", b)
		}
		if !strings.Contains(err.Error(), "dense routing backend") {
			t.Errorf("faults with %v backend: unhelpful error %v", b, err)
		}
		// The same scenario without faults is fine.
		sc.FaultScript = nil
		if err := sc.Validate(); err != nil {
			t.Errorf("faultless %v backend rejected: %v", b, err)
		}
	}
}
