package timeline

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func rec(epoch int64) EpochRecord {
	return EpochRecord{
		Epoch:         epoch,
		Messages:      epoch * 10,
		BoundMessages: epoch * 12,
		Churn:         epoch,
		Requests:      epoch * 100,
	}
}

func TestRingAppendAndSnapshot(t *testing.T) {
	r := NewRing(4)
	if got := r.Capacity(); got != 4 {
		t.Fatalf("Capacity() = %d, want 4", got)
	}
	for e := int64(1); e <= 3; e++ {
		r.Append(rec(e))
	}
	s := r.Snapshot()
	if s.Total != 3 || s.Dropped != 0 || len(s.Records) != 3 {
		t.Fatalf("snapshot total=%d dropped=%d len=%d, want 3/0/3", s.Total, s.Dropped, len(s.Records))
	}
	for i, record := range s.Records {
		if record.Epoch != int64(i+1) {
			t.Fatalf("record %d has epoch %d, want %d (oldest first)", i, record.Epoch, i+1)
		}
	}
	if s.Messages != 10+20+30 || s.Churn != 1+2+3 || s.Requests != 600 {
		t.Fatalf("cumulative sums wrong: %+v", s)
	}
}

func TestRingEvictsOldestAndKeepsSums(t *testing.T) {
	r := NewRing(3)
	for e := int64(1); e <= 7; e++ {
		r.Append(rec(e))
	}
	s := r.Snapshot()
	if s.Total != 7 || s.Dropped != 4 {
		t.Fatalf("total=%d dropped=%d, want 7/4", s.Total, s.Dropped)
	}
	if len(s.Records) != 3 {
		t.Fatalf("retained %d records, want 3", len(s.Records))
	}
	for i, record := range s.Records {
		if record.Epoch != int64(5+i) {
			t.Fatalf("record %d has epoch %d, want %d", i, record.Epoch, 5+i)
		}
	}
	// Cumulative sums cover evicted records too.
	var wantMsgs int64
	for e := int64(1); e <= 7; e++ {
		wantMsgs += e * 10
	}
	if s.Messages != wantMsgs {
		t.Fatalf("cumulative messages %d survived eviction wrong, want %d", s.Messages, wantMsgs)
	}
	if latest, ok := r.Latest(); !ok || latest.Epoch != 7 {
		t.Fatalf("Latest() = %+v/%v, want epoch 7", latest, ok)
	}
}

func TestRingSince(t *testing.T) {
	r := NewRing(8)
	for e := int64(1); e <= 5; e++ {
		r.Append(rec(e))
	}
	if got := r.Since(3); len(got) != 2 || got[0].Epoch != 4 || got[1].Epoch != 5 {
		t.Fatalf("Since(3) = %+v, want epochs 4,5", got)
	}
	if got := r.Since(-1); len(got) != 5 {
		t.Fatalf("Since(-1) returned %d records, want 5", len(got))
	}
	if got := r.Since(99); len(got) != 0 {
		t.Fatalf("Since(99) returned %d records, want 0", len(got))
	}
}

func TestRingCapacityClamped(t *testing.T) {
	r := NewRing(0)
	if r.Capacity() != 1 {
		t.Fatalf("Capacity() = %d, want 1 (clamped)", r.Capacity())
	}
	r.Append(rec(1))
	r.Append(rec(2))
	if r.Len() != 1 || r.Total() != 2 {
		t.Fatalf("len=%d total=%d, want 1/2", r.Len(), r.Total())
	}
}

func TestRingWaitWakesOnAppend(t *testing.T) {
	r := NewRing(2)
	c := r.Wait()
	select {
	case <-c:
		t.Fatal("wait channel closed before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-c
		close(done)
	}()
	r.Append(rec(1))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Append did not wake the waiter")
	}
	// A fresh Wait channel is armed for the next append.
	select {
	case <-r.Wait():
		t.Fatal("fresh wait channel already closed")
	default:
	}
}

func TestRingConcurrentAppendSnapshot(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := int64(1); e <= 100; e++ {
				r.Append(rec(e))
				_ = r.Snapshot()
				_ = r.Since(50)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 400 {
		t.Fatalf("total = %d, want 400", r.Total())
	}
}

func TestWriteJSONDeterministicAndOrdered(t *testing.T) {
	r := NewRing(4)
	r.Append(EpochRecord{Epoch: 1, Messages: 40, BoundMessages: 40, UnitCostMs: 12.5, WallMs: 0.7})
	r.Append(EpochRecord{Epoch: 2, Messages: 38, BoundMessages: 40, Churn: 11})

	var a, b bytes.Buffer
	if err := WriteJSON(&a, r.Snapshot().Records); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, r.Snapshot().Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same ring differ")
	}

	var decoded []EpochRecord
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if len(decoded) != 2 || decoded[0].Epoch != 1 || decoded[1].Messages != 38 {
		t.Fatalf("round trip mangled records: %+v", decoded)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Fatalf("empty encoding = %q, want \"[]\\n\"", got)
	}
}

func BenchmarkRingAppend(b *testing.B) {
	r := NewRing(1024)
	record := rec(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		record.Epoch = int64(i)
		r.Append(record)
	}
}
