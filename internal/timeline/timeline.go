// Package timeline is a bounded, allocation-stingy time-series recorder
// for coordination telemetry: a fixed-capacity ring of typed epoch
// records, oldest-evicted, with cumulative sums that survive eviction
// and a broadcast channel long-poll consumers wait on. The daemon's
// replan loop and the batch coordination-epoch paths append one record
// per epoch; GET /timeline, the Prometheus exposition, and the run
// manifests all read consistent snapshots.
//
// Concurrency model: a Ring is safe for concurrent use. Append takes
// the mutex, writes into preallocated storage (no per-record
// allocation beyond the replaced broadcast channel), and wakes
// waiters; Snapshot/Since copy records out under the same mutex, so
// readers never observe a half-written record.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EpochRecord is one coordination epoch's observability record. The
// daemon and the batch simulator fill the fields that apply to them;
// fields with no meaning in a context stay zero. JSON encoding is
// deterministic: encoding/json emits struct fields in declaration
// order, and every field is a scalar.
type EpochRecord struct {
	// Epoch is the placement epoch this record closes (1-based).
	Epoch int64 `json:"epoch"`
	// SimTimeMs is the engine's virtual clock at the replan.
	SimTimeMs float64 `json:"sim_time_ms"`
	// Requests counts the completed requests observed during the epoch.
	Requests int64 `json:"requests"`

	// Messages is the measured protocol message total (coord.Cost) the
	// epoch actually exchanged; MessagesUp/Down split it by direction.
	Messages     int64 `json:"messages"`
	MessagesUp   int64 `json:"messages_up"`
	MessagesDown int64 `json:"messages_down"`
	// BoundMessages is the model's message budget for the adopted x:
	// one state report up and one directive down per coordinated slot
	// per router, 2*n*x. The protocol must never exceed it.
	BoundMessages int64 `json:"bound_messages"`
	// UnitCostMs is w, the per-exchange unit cost (max pairwise
	// latency); BoundCostMs is the paper's W(x) = w*n*x for the adopted
	// x, and ConvergenceMs the measured epoch convergence time.
	UnitCostMs    float64 `json:"unit_cost_ms"`
	BoundCostMs   float64 `json:"bound_cost_ms"`
	ConvergenceMs float64 `json:"convergence_ms"`

	// LocalSlots/CoordSlots is the adopted capacity split; Level is the
	// coordination level x/c the split corresponds to.
	LocalSlots int64   `json:"local_slots"`
	CoordSlots int64   `json:"coord_slots"`
	Level      float64 `json:"level"`
	// EstimatedS is the adaptive coordinator's online Zipf estimate,
	// when one drove the epoch (0 otherwise).
	EstimatedS float64 `json:"estimated_s,omitempty"`

	// Churn counts coordinated contents whose owner changed versus the
	// previous placement (every content on the first installation).
	Churn int64 `json:"churn"`
	// ReportedContents sums the per-router report cardinalities (the
	// distinct contents each router reported); MaxReport is the largest
	// single router's cardinality.
	ReportedContents int64 `json:"reported_contents"`
	MaxReport        int64 `json:"max_report"`

	// WallMs is the replan's wall-clock duration — the one
	// nondeterministic field, which ccnbench -diff ignores.
	WallMs float64 `json:"wall_ms"`
}

// Snapshot is one consistent view of a Ring: the retained records
// (oldest first) plus counters and cumulative sums covering every
// record ever appended, including evicted ones.
type Snapshot struct {
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
	Dropped  uint64 `json:"dropped"`

	// Cumulative sums across all appended records (eviction-proof).
	Messages      int64 `json:"messages"`
	BoundMessages int64 `json:"bound_messages"`
	Churn         int64 `json:"churn"`
	Requests      int64 `json:"requests"`

	Records []EpochRecord `json:"records"`
}

// Ring is the bounded recorder. Construct with NewRing.
type Ring struct {
	mu   sync.Mutex
	recs []EpochRecord // preallocated backing store, len == capacity
	head int           // index of the oldest live record
	n    int           // live record count

	total   uint64
	dropped uint64

	sumMessages int64
	sumBound    int64
	sumChurn    int64
	sumRequests int64

	waitc chan struct{} // closed and replaced on every Append
}

// NewRing returns a recorder retaining at most capacity records;
// capacity below 1 is clamped to 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		recs:  make([]EpochRecord, capacity),
		waitc: make(chan struct{}),
	}
}

// Capacity returns the fixed retention limit.
func (r *Ring) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Len returns the number of retained records.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total returns how many records have ever been appended.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Append records one epoch, evicting the oldest record when full, and
// wakes every Wait-er. It never allocates record storage.
func (r *Ring) Append(rec EpochRecord) {
	r.mu.Lock()
	if r.n == len(r.recs) {
		r.head = (r.head + 1) % len(r.recs)
		r.n--
		r.dropped++
	}
	r.recs[(r.head+r.n)%len(r.recs)] = rec
	r.n++
	r.total++
	r.sumMessages += rec.Messages
	r.sumBound += rec.BoundMessages
	r.sumChurn += rec.Churn
	r.sumRequests += rec.Requests
	close(r.waitc)
	r.waitc = make(chan struct{})
	r.mu.Unlock()
}

// Wait returns a channel closed at the next Append — the long-poll
// primitive behind GET /timeline?follow=1. Callers select on it
// together with their own timeout/cancellation.
func (r *Ring) Wait() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.waitc
}

// Snapshot copies out the current state, records oldest first.
func (r *Ring) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Capacity:      len(r.recs),
		Total:         r.total,
		Dropped:       r.dropped,
		Messages:      r.sumMessages,
		BoundMessages: r.sumBound,
		Churn:         r.sumChurn,
		Requests:      r.sumRequests,
		Records:       make([]EpochRecord, r.n),
	}
	for i := 0; i < r.n; i++ {
		s.Records[i] = r.recs[(r.head+i)%len(r.recs)]
	}
	return s
}

// Since returns the retained records with Epoch strictly greater than
// epoch, oldest first. Since(-1) returns everything retained.
func (r *Ring) Since(epoch int64) []EpochRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EpochRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		rec := r.recs[(r.head+i)%len(r.recs)]
		if rec.Epoch > epoch {
			out = append(out, rec)
		}
	}
	return out
}

// Latest returns the most recent record, if any.
func (r *Ring) Latest() (EpochRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return EpochRecord{}, false
	}
	return r.recs[(r.head+r.n-1)%len(r.recs)], true
}

// WriteJSON serializes records as an indented JSON array plus a
// newline; byte-deterministic for a given slice. A nil slice encodes
// as the empty array, so "no records yet" and "no records match" read
// identically.
func WriteJSON(w io.Writer, records []EpochRecord) error {
	if records == nil {
		records = []EpochRecord{}
	}
	b, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return fmt.Errorf("timeline: marshaling records: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("timeline: writing records: %w", err)
	}
	return nil
}
