package solve

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectBasicRoots(t *testing.T) {
	tests := []struct {
		name   string
		f      Func
		lo, hi float64
		want   float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 4 }, 0, 10, 2},
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cubic", func(x float64) float64 { return x*x*x - 27 }, 0, 10, 3},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"reversed interval", func(x float64) float64 { return x - 1 }, 5, 0, 1},
		{"root at lo", func(x float64) float64 { return x }, 0, 1, 0},
		{"root at hi", func(x float64) float64 { return x - 1 }, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Bisect(tt.f, tt.lo, tt.hi, 1e-12)
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Bisect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBrentBasicRoots(t *testing.T) {
	tests := []struct {
		name   string
		f      Func
		lo, hi float64
		want   float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"exp crossing", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
		{"steep power", func(x float64) float64 { return math.Pow(x, -0.8) - 3 }, 1e-6, 1, math.Pow(3, -1.25)},
		{"root at lo", func(x float64) float64 { return x }, 0, 1, 0},
		{"root at hi", func(x float64) float64 { return x - 1 }, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Brent(tt.f, tt.lo, tt.hi, 1e-13)
			if err != nil {
				t.Fatalf("Brent: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-8 {
				t.Errorf("Brent = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return 1 + x*x }, -2, 2, 1e-12)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

// TestBrentAgreesWithBisect property test: on random monotone lines the
// two root finders must agree.
func TestBrentAgreesWithBisect(t *testing.T) {
	f := func(a, b uint16) bool {
		slope := 0.1 + float64(a%1000)/100
		root := float64(b%500)/100 + 0.5 // in (0.5, 5.5)
		fn := func(x float64) float64 { return slope * (x - root) }
		r1, err1 := Bisect(fn, 0, 6, 1e-12)
		r2, err2 := Brent(fn, 0, 6, 1e-12)
		return err1 == nil && err2 == nil && math.Abs(r1-r2) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewton(t *testing.T) {
	got, err := Newton(
		func(x float64) float64 { return x*x - 2 },
		func(x float64) float64 { return 2 * x },
		1.0, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt2) > 1e-10 {
		t.Errorf("Newton = %v, want sqrt2", got)
	}
}

func TestNewtonZeroDerivative(t *testing.T) {
	_, err := Newton(
		func(x float64) float64 { return x*x + 1 },
		func(x float64) float64 { return 0 },
		1.0, 1e-12)
	if err == nil {
		t.Error("Newton with zero derivative should fail")
	}
}

func TestNewtonDiverges(t *testing.T) {
	// atan has a well-known Newton divergence for large starting points.
	_, err := Newton(math.Atan, func(x float64) float64 { return 1 / (1 + x*x) }, 1e8, 1e-15)
	if err == nil {
		t.Skip("converged anyway; acceptable")
	}
	if !errors.Is(err, ErrMaxIter) && err != nil {
		t.Logf("failed with: %v", err) // any failure mode is acceptable
	}
}

func TestGoldenSection(t *testing.T) {
	tests := []struct {
		name   string
		f      Func
		lo, hi float64
		want   float64
	}{
		{"parabola", func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 3},
		{"quartic", func(x float64) float64 { return math.Pow(x-1.5, 4) }, -5, 5, 1.5},
		{"boundary min lo", func(x float64) float64 { return x }, 2, 5, 2},
		{"boundary min hi", func(x float64) float64 { return -x }, 2, 5, 5},
		{"reversed", func(x float64) float64 { return (x - 3) * (x - 3) }, 10, 0, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := GoldenSection(tt.f, tt.lo, tt.hi, 1e-10)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-6 {
				t.Errorf("GoldenSection = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDerivative(t *testing.T) {
	tests := []struct {
		name string
		f    Func
		x    float64
		want float64
	}{
		{"x^2 at 3", func(x float64) float64 { return x * x }, 3, 6},
		{"sin at 0", math.Sin, 0, 1},
		{"exp at 1", math.Exp, 1, math.E},
		{"x^-0.8 at 2", func(x float64) float64 { return math.Pow(x, -0.8) }, 2, -0.8 * math.Pow(2, -1.8)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Derivative(tt.f, tt.x, 0)
			if math.Abs(got-tt.want) > 1e-6*math.Max(1, math.Abs(tt.want)) {
				t.Errorf("Derivative = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSecondDerivative(t *testing.T) {
	got := SecondDerivative(func(x float64) float64 { return x * x * x }, 2, 0)
	if math.Abs(got-12) > 1e-4 {
		t.Errorf("SecondDerivative(x^3, 2) = %v, want 12", got)
	}
}

func TestMinimizeConvexBounded(t *testing.T) {
	tests := []struct {
		name   string
		df     Func
		lo, hi float64
		want   float64
	}{
		{"interior", func(x float64) float64 { return 2 * (x - 3) }, 0, 10, 3},
		{"clamped lo", func(x float64) float64 { return 2 * (x + 1) }, 0, 10, 0},
		{"clamped hi", func(x float64) float64 { return 2 * (x - 20) }, 0, 10, 10},
		{"singular edge", func(x float64) float64 { return math.Pow(1-x, -0.8) - math.Pow(x, -0.8) }, 1e-9, 1 - 1e-9, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MinimizeConvexBounded(tt.df, tt.lo, tt.hi, 1e-12)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-6 {
				t.Errorf("MinimizeConvexBounded = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMinimizeConvexBoundedBadInterval(t *testing.T) {
	if _, err := MinimizeConvexBounded(func(x float64) float64 { return x }, 5, 1, 1e-9); err == nil {
		t.Error("want error for inverted interval")
	}
}

// TestMinimizeMatchesGoldenSection cross-checks the two minimizers on a
// family of shifted convex functions.
func TestMinimizeMatchesGoldenSection(t *testing.T) {
	f := func(seed uint8) bool {
		m := 0.5 + float64(seed%90)/10 // minimum in (0.5, 9.5)
		fn := func(x float64) float64 { return (x - m) * (x - m) * (1 + 0.1*(x-m)*(x-m)) }
		dfn := func(x float64) float64 { return Derivative(fn, x, 1e-7) }
		x1, err1 := GoldenSection(fn, 0, 10, 1e-10)
		x2, err2 := MinimizeConvexBounded(dfn, 0, 10, 1e-10)
		return err1 == nil && err2 == nil && math.Abs(x1-x2) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBrent(b *testing.B) {
	f := func(x float64) float64 { return math.Pow(x, -0.8) - math.Pow(1-x, -0.8) - 2 }
	for i := 0; i < b.N; i++ {
		if _, err := Brent(f, 1e-9, 1-1e-9, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}
