// Package solve provides the one-dimensional root finders and minimizers
// the analytical model needs: bisection, Brent's method, Newton iteration,
// golden-section search, and central-difference differentiation. Go's
// ecosystem has no stdlib equivalent of SciPy's optimize module, so these
// are implemented from scratch on top of math only.
package solve

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket reports that a root finder was given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("solve: interval does not bracket a root")

// ErrMaxIter reports that an iterative method exhausted its iteration
// budget before converging.
var ErrMaxIter = errors.New("solve: maximum iterations exceeded")

// defaultMaxIter bounds every iterative method in this package.
const defaultMaxIter = 200

// Func is a scalar function of one variable.
type Func func(float64) float64

// Bisect finds a root of f in [lo, hi] by bisection. The endpoints must
// bracket a sign change (f(lo)*f(hi) <= 0). It converges unconditionally
// and returns a point where the interval width has shrunk below tol.
func Bisect(f Func, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = 1e-12
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}
	for i := 0; i < 500; i++ {
		mid := lo + (hi-lo)/2
		if hi-lo < tol || mid == lo || mid == hi {
			return mid, nil
		}
		fmid := f(mid)
		if fmid == 0 {
			return mid, nil
		}
		if math.Signbit(fmid) == math.Signbit(flo) {
			lo, flo = mid, fmid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Brent finds a root of f in [lo, hi] using Brent's method (inverse
// quadratic interpolation with bisection fallback). The endpoints must
// bracket a sign change. It typically converges superlinearly and is the
// preferred root finder for smooth functions.
func Brent(f Func, lo, hi, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	a, b := lo, hi
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	c, fc := a, fa
	var d, e float64 = b - a, b - a
	for i := 0; i < defaultMaxIter; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.Nextafter(math.Abs(b), math.Inf(1))*0x1p-52 + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				// Secant step.
				p = 2 * xm * s
				q = 1 - s
			} else {
				// Inverse quadratic interpolation.
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if math.Signbit(fb) == math.Signbit(fc) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return 0, fmt.Errorf("%w: Brent after %d iterations", ErrMaxIter, defaultMaxIter)
}

// Newton finds a root of f starting from x0 using Newton-Raphson iteration
// with derivative df. It fails if the derivative vanishes or the iteration
// budget runs out before |f(x)| or the step drops below tol.
func Newton(f, df Func, x0, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	x := x0
	for i := 0; i < defaultMaxIter; i++ {
		fx := f(x)
		if math.Abs(fx) < tol {
			return x, nil
		}
		dfx := df(x)
		if dfx == 0 || math.IsNaN(dfx) || math.IsInf(dfx, 0) {
			return 0, fmt.Errorf("solve: Newton derivative unusable (%g) at x=%g", dfx, x)
		}
		step := fx / dfx
		x -= step
		if math.Abs(step) < tol {
			return x, nil
		}
	}
	return 0, fmt.Errorf("%w: Newton after %d iterations", ErrMaxIter, defaultMaxIter)
}

// invPhi is 1/phi, the golden-section reduction factor.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal f on [lo, hi] and returns the
// minimizing abscissa to within tol. For convex functions (the model's
// objective T_w is convex by Lemma 1) unimodality always holds.
func GoldenSection(f Func, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x1 := hi - invPhi*(hi-lo)
	x2 := lo + invPhi*(hi-lo)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 500 && hi-lo > tol; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - invPhi*(hi-lo)
			f1 = f(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + invPhi*(hi-lo)
			f2 = f(x2)
		}
	}
	return lo + (hi-lo)/2, nil
}

// Derivative estimates f'(x) with a symmetric central difference of
// half-width h. If h <= 0 a scale-aware default is used.
func Derivative(f Func, x, h float64) float64 {
	if h <= 0 {
		h = 1e-6 * math.Max(1, math.Abs(x))
	}
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) with a second-order central
// difference of half-width h. If h <= 0 a scale-aware default is used.
func SecondDerivative(f Func, x, h float64) float64 {
	if h <= 0 {
		h = 1e-4 * math.Max(1, math.Abs(x))
	}
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// MinimizeConvexBounded minimizes a differentiable convex f on [lo, hi]
// given its derivative df. It first checks the boundary gradients — if
// df(lo) >= 0 the minimum is at lo; if df(hi) <= 0 it is at hi — and
// otherwise finds the interior stationary point by Brent root finding on
// df (falling back to bisection if Brent stalls).
func MinimizeConvexBounded(df Func, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		return 0, fmt.Errorf("solve: invalid interval [%g, %g]", lo, hi)
	}
	dlo, dhi := df(lo), df(hi)
	if dlo >= 0 {
		return lo, nil
	}
	if dhi <= 0 {
		return hi, nil
	}
	x, err := Brent(df, lo, hi, tol)
	if err != nil {
		x, err = Bisect(df, lo, hi, tol)
	}
	if err != nil {
		return 0, fmt.Errorf("solve: convex minimization failed: %w", err)
	}
	return x, nil
}
