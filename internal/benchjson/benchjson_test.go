package benchjson

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ccncoord
cpu: Intel(R) Xeon(R) CPU
BenchmarkSimRun/Coordinated/US-A-8         	      33	  34212000 ns/op	 6517000 B/op	  146151 allocs/op
BenchmarkSimRun/LRU/US-A-8                 	      20	  51000000 ns/op	12000000 B/op	  300000 allocs/op
BenchmarkSimulationThroughput              	      33	  34212000 ns/op	     20000 requests/op	 6517000 B/op	  146151 allocs/op
BenchmarkFig4-8                            	       5	 210000000 ns/op
PASS
ok  	ccncoord	12.3s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.GoOS != "linux" || s.GoArch != "amd64" || s.Pkg != "ccncoord" {
		t.Errorf("bad header: %+v", s)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(s.Benchmarks))
	}
	r := s.Find("BenchmarkSimRun/Coordinated/US-A")
	if r == nil {
		t.Fatal("missing BenchmarkSimRun/Coordinated/US-A")
	}
	if r.Procs != 8 || r.Iterations != 33 {
		t.Errorf("procs=%d iters=%d, want 8/33", r.Procs, r.Iterations)
	}
	if r.NsPerOp != 34212000 || r.BytesPerOp != 6517000 || r.AllocsPerOp != 146151 {
		t.Errorf("bad metrics: %+v", r)
	}
	// Custom ReportMetric units land in Extra; a name without a -N
	// suffix defaults to procs=1.
	th := s.Find("BenchmarkSimulationThroughput")
	if th == nil || th.Procs != 1 {
		t.Fatalf("throughput record: %+v", th)
	}
	if th.Extra["requests/op"] != 20000 {
		t.Errorf("extra metrics: %+v", th.Extra)
	}
	// -benchmem off leaves B/op and allocs/op at zero.
	fig := s.Find("BenchmarkFig4")
	if fig == nil || fig.BytesPerOp != 0 || fig.AllocsPerOp != 0 {
		t.Errorf("fig4 record: %+v", fig)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX",              // no iteration count
		"BenchmarkX notanumber",   // bad count
		"BenchmarkX 10 12.5",      // value without unit
		"BenchmarkX 10 abc ns/op", // bad value
		"BenchmarkX 10 1 ns/op 2", // trailing odd pair
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	s.Date = "2026-08-05"
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != s.Date || len(back.Benchmarks) != len(s.Benchmarks) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range s.Benchmarks {
		if !reflect.DeepEqual(back.Benchmarks[i], s.Benchmarks[i]) {
			t.Errorf("record %d changed: %+v vs %+v", i, back.Benchmarks[i], s.Benchmarks[i])
		}
	}
	wantNames := []string{
		"BenchmarkFig4",
		"BenchmarkSimRun/Coordinated/US-A",
		"BenchmarkSimRun/LRU/US-A",
		"BenchmarkSimulationThroughput",
	}
	got := back.Names()
	if len(got) != len(wantNames) {
		t.Fatalf("names %v, want %v", got, wantNames)
	}
	for i := range wantNames {
		if got[i] != wantNames[i] {
			t.Errorf("name %d = %q, want %q", i, got[i], wantNames[i])
		}
	}
}
