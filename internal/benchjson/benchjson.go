// Package benchjson converts `go test -bench` output into a stable JSON
// document, so benchmark baselines can be committed (BENCH_<date>.json)
// and diffed across changes. It parses the standard benchmark line
// format — name, iteration count, then value/unit pairs such as ns/op,
// B/op and allocs/op — plus the goos/goarch/pkg/cpu header lines.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkSimRun/Coordinated/US-A").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark line (1 if absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// metrics. BytesPerOp/AllocsPerOp are zero when -benchmem was off.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds any further value/unit pairs (e.g. b.ReportMetric
	// custom units such as "requests/op"), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Suite is a full benchmark run: environment header plus one record per
// benchmark line.
type Suite struct {
	Date       string   `json:"date,omitempty"` // YYYY-MM-DD, set by the caller
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// Names returns the benchmark names in the suite, sorted.
func (s *Suite) Names() []string {
	names := make([]string, len(s.Benchmarks))
	for i, r := range s.Benchmarks {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}

// Find returns the record with the given name, or nil.
func (s *Suite) Find(name string) *Record {
	for i := range s.Benchmarks {
		if s.Benchmarks[i].Name == name {
			return &s.Benchmarks[i]
		}
	}
	return nil
}

// Parse reads `go test -bench` output. Unrecognized lines (PASS, ok,
// test logs) are ignored; malformed Benchmark lines are an error.
func Parse(r io.Reader) (*Suite, error) {
	s := &Suite{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			s.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			rec, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			s.Benchmarks = append(s.Benchmarks, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading input: %w", err)
	}
	return s, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   33   34000000 ns/op   650000 B/op   1460 allocs/op
func parseLine(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Record{}, fmt.Errorf("benchjson: short benchmark line %q", line)
	}
	rec := Record{Name: fields[0], Procs: 1}
	// Split the trailing -N GOMAXPROCS suffix off the name. Benchmark
	// names may themselves contain dashes, so only a trailing -<digits>
	// counts.
	if i := strings.LastIndex(rec.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
			rec.Name, rec.Procs = rec.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
	}
	rec.Iterations = iters
	// The rest are value/unit pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Record{}, fmt.Errorf("benchjson: odd value/unit pairs in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Record{}, fmt.Errorf("benchjson: bad value %q in %q: %w", rest[i], line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = v
		case "allocs/op":
			rec.AllocsPerOp = v
		default:
			if rec.Extra == nil {
				rec.Extra = map[string]float64{}
			}
			rec.Extra[unit] = v
		}
	}
	return rec, nil
}

// Write marshals the suite as indented JSON with a trailing newline.
func Write(w io.Writer, s *Suite) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: encoding: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("benchjson: writing: %w", err)
	}
	return nil
}

// Read parses a JSON document produced by Write.
func Read(r io.Reader) (*Suite, error) {
	var s Suite
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("benchjson: decoding: %w", err)
	}
	return &s, nil
}
