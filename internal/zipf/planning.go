package zipf

import (
	"fmt"
	"math"
)

// This file holds capacity-planning helpers built on the continuous
// approximation of Eq. (6): inverses and mass queries a carrier needs
// when sizing content stores ("how many contents cover 90% of
// requests?").

// RankForMass returns the smallest catalog prefix x such that the
// continuous CDF F(x; s, N) reaches q, i.e. the number of top-ranked
// contents covering a q fraction of requests. q must lie in [0, 1].
func RankForMass(q, s, n float64) (float64, error) {
	switch {
	case q < 0 || q > 1:
		return 0, fmt.Errorf("zipf: mass fraction %v outside [0,1]", q)
	case !(n > 1):
		return 0, fmt.Errorf("zipf: population %v must exceed 1", n)
	case !(s > 0):
		return 0, fmt.Errorf("zipf: exponent %v must be positive", s)
	case q == 0:
		return 1, nil
	case q == 1:
		return n, nil
	}
	if s == 1 {
		return math.Pow(n, q), nil // F(x) = ln x / ln N
	}
	// Invert F(x) = (x^(1-s)-1)/(N^(1-s)-1).
	v := 1 + q*(math.Pow(n, 1-s)-1)
	return math.Pow(v, 1/(1-s)), nil
}

// TailMass returns 1 - F(k; s, N): the request fraction falling outside
// the top-k contents — the long tail that the paper argues makes
// non-coordinated caching suffer.
func TailMass(k, s, n float64) float64 {
	return 1 - ContinuousCDF(k, s, n)
}

// CoverageGain returns the multiplier on served request mass obtained by
// pooling n routers' coordinated storage: F(c + (n-1)x) / F(c). It is the
// intuition behind the paper's G_O in ratio form.
func CoverageGain(c, x, s, n, routers float64) float64 {
	base := ContinuousCDF(c, s, n)
	if base == 0 {
		return 0
	}
	return ContinuousCDF(c+(routers-1)*x, s, n) / base
}
