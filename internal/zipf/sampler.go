package zipf

import (
	"fmt"
	"math"
	"math/rand"
)

// Shape is the RNG-independent precomputed state of a rejection-inversion
// Zipf sampler: the distribution parameters plus the transformed-density
// constants every draw consults. A Shape is immutable after construction
// and safe to share across goroutines and across any number of samplers,
// so the per-(s, N) setup cost is paid once per simulation run instead of
// once per router.
type Shape struct {
	s float64
	n int64

	hx1      float64 // H(1.5) - 1
	hn       float64 // H(N + 0.5)
	sMinus   float64 // acceptance shortcut threshold
	oneMinus float64 // 1 - s, cached
}

// NewShape precomputes the sampler constants for exponent s over ranks
// 1..n.
func NewShape(s float64, n int64) (*Shape, error) {
	if !(s > 0) || math.IsNaN(s) || math.IsInf(s, 1) {
		return nil, fmt.Errorf("zipf: sampler exponent must be positive and finite, got %v", s)
	}
	if n < 1 {
		return nil, fmt.Errorf("zipf: sampler population must be >= 1, got %d", n)
	}
	sh := &Shape{s: s, n: n, oneMinus: 1 - s}
	sh.hx1 = sh.hIntegral(1.5) - 1
	sh.hn = sh.hIntegral(float64(n) + 0.5)
	sh.sMinus = 2 - sh.hIntegralInverse(sh.hIntegral(2.5)-sh.h(2))
	return sh, nil
}

// S returns the exponent.
func (sh *Shape) S() float64 { return sh.s }

// N returns the population size.
func (sh *Shape) N() int64 { return sh.n }

// Sampler returns a sampler over this shape driven by the given seeded
// source. The rng must not be shared across goroutines.
func (sh *Shape) Sampler(rng *rand.Rand) (*Sampler, error) {
	if rng == nil {
		return nil, fmt.Errorf("zipf: sampler requires a non-nil *rand.Rand")
	}
	return &Sampler{shape: sh, rng: rng}, nil
}

// h is the unnormalized density x^-s.
func (sh *Shape) h(x float64) float64 { return math.Pow(x, -sh.s) }

// hIntegral is an antiderivative of h: (x^(1-s)-1)/(1-s), or ln x at s=1.
func (sh *Shape) hIntegral(x float64) float64 {
	lx := math.Log(x)
	return helper2(sh.oneMinus*lx) * lx
}

// hIntegralInverse inverts hIntegral.
func (sh *Shape) hIntegralInverse(x float64) float64 {
	t := x * sh.oneMinus
	if t < -1 {
		// Numerical round-off can push t slightly below the domain
		// boundary; clamp so Exp below stays finite.
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// Sampler draws ranks from a Zipf distribution with any exponent s > 0.
//
// It implements the rejection-inversion method of Hörmann and Derflinger
// ("Rejection-inversion to generate variates from monotone discrete
// distributions", ACM TOMACS 1996). Unlike math/rand's Zipf generator it
// supports the empirically dominant range s in (0,1) and runs in O(1)
// expected time per sample regardless of N, which lets the simulator use
// catalogs of 10^6..10^12 contents without a CDF table. Samplers sharing
// a Shape differ only in their RNG stream.
type Sampler struct {
	shape *Shape
	rng   *rand.Rand
}

// NewSampler returns a sampler over ranks 1..n with exponent s, driven by
// the given seeded source. The rng must not be shared across goroutines.
// Callers creating many samplers with identical (s, n) should build one
// Shape and call Shape.Sampler instead to share the precomputed state.
func NewSampler(s float64, n int64, rng *rand.Rand) (*Sampler, error) {
	sh, err := NewShape(s, n)
	if err != nil {
		return nil, err
	}
	return sh.Sampler(rng)
}

// Next returns the next sampled rank in [1, n].
func (sm *Sampler) Next() int64 {
	sh := sm.shape
	for {
		u := sh.hn + sm.rng.Float64()*(sh.hx1-sh.hn)
		x := sh.hIntegralInverse(u)
		k := int64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > sh.n {
			k = sh.n
		}
		if float64(k)-x <= sh.sMinus || u >= sh.hIntegral(float64(k)+0.5)-sh.h(float64(k)) {
			return k
		}
	}
}

// helper1 computes log1p(x)/x with a series fallback near 0, so that the
// inversion stays accurate when s is close to 1.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with a series fallback near 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

// TableSampler draws ranks by inverse-CDF lookup over a precomputed table.
// It is exact (no approximation) but requires O(N) memory, so it is only
// suitable for small catalogs; the tests use it as an oracle against
// Sampler.
type TableSampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewTableSampler builds an exact inverse-CDF sampler for d.
func NewTableSampler(d *Dist, rng *rand.Rand) (*TableSampler, error) {
	if rng == nil {
		return nil, fmt.Errorf("zipf: table sampler requires a non-nil *rand.Rand")
	}
	const maxTable = 1 << 24
	if d.n > maxTable {
		return nil, fmt.Errorf("zipf: table sampler population %d exceeds limit %d", d.n, maxTable)
	}
	cdf := make([]float64, d.n)
	var acc float64
	for i := int64(1); i <= d.n; i++ {
		acc += d.PMF(i)
		cdf[i-1] = acc
	}
	cdf[d.n-1] = 1 // force exactness at the top despite rounding
	return &TableSampler{cdf: cdf, rng: rng}, nil
}

// Next returns the next sampled rank in [1, len(table)].
func (ts *TableSampler) Next() int64 {
	u := ts.rng.Float64()
	lo, hi := 0, len(ts.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ts.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}
