package zipf

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler draws ranks from a Zipf distribution with any exponent s > 0.
//
// It implements the rejection-inversion method of Hörmann and Derflinger
// ("Rejection-inversion to generate variates from monotone discrete
// distributions", ACM TOMACS 1996). Unlike math/rand's Zipf generator it
// supports the empirically dominant range s in (0,1) and runs in O(1)
// expected time per sample regardless of N, which lets the simulator use
// catalogs of 10^6..10^12 contents without a CDF table.
type Sampler struct {
	s   float64
	n   int64
	rng *rand.Rand

	hx1      float64 // H(1.5) - 1
	hn       float64 // H(N + 0.5)
	sMinus   float64 // acceptance shortcut threshold
	oneMinus float64 // 1 - s, cached
}

// NewSampler returns a sampler over ranks 1..n with exponent s, driven by
// the given seeded source. The rng must not be shared across goroutines.
func NewSampler(s float64, n int64, rng *rand.Rand) (*Sampler, error) {
	if !(s > 0) || math.IsNaN(s) || math.IsInf(s, 1) {
		return nil, fmt.Errorf("zipf: sampler exponent must be positive and finite, got %v", s)
	}
	if n < 1 {
		return nil, fmt.Errorf("zipf: sampler population must be >= 1, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("zipf: sampler requires a non-nil *rand.Rand")
	}
	sm := &Sampler{s: s, n: n, rng: rng, oneMinus: 1 - s}
	sm.hx1 = sm.hIntegral(1.5) - 1
	sm.hn = sm.hIntegral(float64(n) + 0.5)
	sm.sMinus = 2 - sm.hIntegralInverse(sm.hIntegral(2.5)-sm.h(2))
	return sm, nil
}

// h is the unnormalized density x^-s.
func (sm *Sampler) h(x float64) float64 { return math.Pow(x, -sm.s) }

// hIntegral is an antiderivative of h: (x^(1-s)-1)/(1-s), or ln x at s=1.
func (sm *Sampler) hIntegral(x float64) float64 {
	lx := math.Log(x)
	return helper2(sm.oneMinus*lx) * lx
}

// hIntegralInverse inverts hIntegral.
func (sm *Sampler) hIntegralInverse(x float64) float64 {
	t := x * sm.oneMinus
	if t < -1 {
		// Numerical round-off can push t slightly below the domain
		// boundary; clamp so Exp below stays finite.
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// Next returns the next sampled rank in [1, n].
func (sm *Sampler) Next() int64 {
	for {
		u := sm.hn + sm.rng.Float64()*(sm.hx1-sm.hn)
		x := sm.hIntegralInverse(u)
		k := int64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > sm.n {
			k = sm.n
		}
		if float64(k)-x <= sm.sMinus || u >= sm.hIntegral(float64(k)+0.5)-sm.h(float64(k)) {
			return k
		}
	}
}

// helper1 computes log1p(x)/x with a series fallback near 0, so that the
// inversion stays accurate when s is close to 1.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with a series fallback near 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

// TableSampler draws ranks by inverse-CDF lookup over a precomputed table.
// It is exact (no approximation) but requires O(N) memory, so it is only
// suitable for small catalogs; the tests use it as an oracle against
// Sampler.
type TableSampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewTableSampler builds an exact inverse-CDF sampler for d.
func NewTableSampler(d *Dist, rng *rand.Rand) (*TableSampler, error) {
	if rng == nil {
		return nil, fmt.Errorf("zipf: table sampler requires a non-nil *rand.Rand")
	}
	const maxTable = 1 << 24
	if d.n > maxTable {
		return nil, fmt.Errorf("zipf: table sampler population %d exceeds limit %d", d.n, maxTable)
	}
	cdf := make([]float64, d.n)
	var acc float64
	for i := int64(1); i <= d.n; i++ {
		acc += d.PMF(i)
		cdf[i-1] = acc
	}
	cdf[d.n-1] = 1 // force exactness at the top despite rounding
	return &TableSampler{cdf: cdf, rng: rng}, nil
}

// Next returns the next sampled rank in [1, len(table)].
func (ts *TableSampler) Next() int64 {
	u := ts.rng.Float64()
	lo, hi := 0, len(ts.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ts.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}
