package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if a == 0 || b == 0 {
		return diff < tol
	}
	return diff/math.Max(math.Abs(a), math.Abs(b)) < tol
}

func TestHarmonicSmallValues(t *testing.T) {
	tests := []struct {
		name string
		k    int64
		s    float64
		want float64
	}{
		{"k=0", 0, 0.8, 0},
		{"k=-3", -3, 0.8, 0},
		{"k=1 any s", 1, 1.7, 1},
		{"k=2 s=1", 2, 1, 1.5},
		{"k=3 s=1", 3, 1, 1 + 0.5 + 1.0/3.0},
		{"k=2 s=2", 2, 2, 1.25},
		{"k=4 s=0.5", 4, 0.5, 1 + 1/math.Sqrt2 + 1/math.Sqrt(3) + 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Harmonic(tt.k, tt.s); !almostEqual(got, tt.want, 1e-14) {
				t.Errorf("Harmonic(%d, %v) = %v, want %v", tt.k, tt.s, got, tt.want)
			}
		})
	}
}

// TestHarmonicTailAgreesWithDirectSum checks the Euler-Maclaurin path
// against brute-force summation just past the exact/approximate boundary.
func TestHarmonicTailAgreesWithDirectSum(t *testing.T) {
	const k = exactHarmonicLimit * 4
	for _, s := range []float64{0.2, 0.5, 0.8, 1.0, 1.2, 1.5, 1.9} {
		want := harmonicExact(k, s)
		got := Harmonic(k, s)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("s=%v: Harmonic(%d) = %.15g, direct sum = %.15g", s, k, got, want)
		}
	}
}

func TestHarmonicMonotoneInK(t *testing.T) {
	for _, s := range []float64{0.3, 1.0, 1.8} {
		prev := 0.0
		for _, k := range []int64{1, 2, 10, 100, exactHarmonicLimit, exactHarmonicLimit + 1, 1 << 20} {
			h := Harmonic(k, s)
			if h <= prev {
				t.Errorf("s=%v: Harmonic not strictly increasing at k=%d: %v <= %v", s, k, h, prev)
			}
			prev = h
		}
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		s       float64
		n       int64
		wantErr bool
	}{
		{"valid s<1", 0.8, 1000, false},
		{"valid s>1", 1.3, 1000, false},
		{"valid s=1", 1.0, 10, false},
		{"zero s", 0, 10, true},
		{"negative s", -0.5, 10, true},
		{"NaN s", math.NaN(), 10, true},
		{"Inf s", math.Inf(1), 10, true},
		{"zero n", 0.8, 0, true},
		{"negative n", 0.8, -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.s, tt.n)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%v, %d) error = %v, wantErr %v", tt.s, tt.n, err, tt.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(-1, 10) did not panic")
		}
	}()
	MustNew(-1, 10)
}

func TestPMFSumsToOne(t *testing.T) {
	for _, s := range []float64{0.5, 0.8, 1.0, 1.3} {
		d := MustNew(s, 500)
		var sum float64
		for i := int64(1); i <= d.N(); i++ {
			sum += d.PMF(i)
		}
		if !almostEqual(sum, 1, 1e-12) {
			t.Errorf("s=%v: PMF sums to %v, want 1", s, sum)
		}
	}
}

func TestPMFOutOfRange(t *testing.T) {
	d := MustNew(0.8, 100)
	for _, i := range []int64{0, -1, 101, 1 << 40} {
		if p := d.PMF(i); p != 0 {
			t.Errorf("PMF(%d) = %v, want 0", i, p)
		}
	}
}

func TestPMFDecreasing(t *testing.T) {
	d := MustNew(0.8, 1000)
	for i := int64(2); i <= d.N(); i++ {
		if d.PMF(i) >= d.PMF(i-1) {
			t.Fatalf("PMF not strictly decreasing at rank %d", i)
		}
	}
}

func TestCDFBoundsAndEndpoints(t *testing.T) {
	d := MustNew(1.2, 1000)
	if got := d.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	if got := d.CDF(-5); got != 0 {
		t.Errorf("CDF(-5) = %v, want 0", got)
	}
	if got := d.CDF(1000); got != 1 {
		t.Errorf("CDF(N) = %v, want 1", got)
	}
	if got := d.CDF(5000); got != 1 {
		t.Errorf("CDF(5N) = %v, want 1", got)
	}
	if got := d.CDF(1); !almostEqual(got, d.PMF(1), 1e-14) {
		t.Errorf("CDF(1) = %v, want PMF(1) = %v", got, d.PMF(1))
	}
}

// TestCDFMatchesPMFSum property: F(k) == sum of f(1..k).
func TestCDFMatchesPMFSum(t *testing.T) {
	d := MustNew(0.8, 2000)
	var acc float64
	for k := int64(1); k < d.N(); k++ {
		acc += d.PMF(k)
		if !almostEqual(d.CDF(k), acc, 1e-10) {
			t.Fatalf("CDF(%d) = %v, cumulative PMF = %v", k, d.CDF(k), acc)
		}
	}
}

func TestCDFQuickMonotone(t *testing.T) {
	d := MustNew(0.9, 1_000_000)
	f := func(a, b uint32) bool {
		ka, kb := int64(a%1_000_000)+1, int64(b%1_000_000)+1
		if ka > kb {
			ka, kb = kb, ka
		}
		return d.CDF(ka) <= d.CDF(kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContinuousCDFProperties(t *testing.T) {
	const n = 1e6
	for _, s := range []float64{0.1, 0.8, 1.0, 1.3, 1.9} {
		if got := ContinuousCDF(0.5, s, n); got != 0 {
			t.Errorf("s=%v: F(0.5) = %v, want 0", s, got)
		}
		if got := ContinuousCDF(1, s, n); got != 0 {
			t.Errorf("s=%v: F(1) = %v, want 0", s, got)
		}
		if got := ContinuousCDF(n, s, n); got != 1 {
			t.Errorf("s=%v: F(N) = %v, want 1", s, got)
		}
		if got := ContinuousCDF(n*10, s, n); got != 1 {
			t.Errorf("s=%v: F(10N) = %v, want 1", s, got)
		}
		prev := -1.0
		for x := 1.0; x <= n; x *= 3 {
			v := ContinuousCDF(x, s, n)
			if v < prev {
				t.Errorf("s=%v: ContinuousCDF not monotone at x=%v", s, x)
			}
			prev = v
		}
	}
}

// TestContinuousApproximatesDiscrete checks Eq. (6) against the exact
// harmonic ratio: the relative error should be small for moderate k and N.
func TestContinuousApproximatesDiscrete(t *testing.T) {
	const n = 100000
	d := MustNew(0.8, n)
	for _, k := range []int64{100, 1000, 10000} {
		exact := d.CDF(k)
		approx := ContinuousCDF(float64(k), 0.8, n)
		if math.Abs(exact-approx) > 0.05 {
			t.Errorf("k=%d: |exact %v - approx %v| too large", k, exact, approx)
		}
	}
}

func TestContinuousPDFIsDerivative(t *testing.T) {
	const n, h = 1e6, 1e-3
	for _, s := range []float64{0.5, 1.0, 1.5} {
		for _, x := range []float64{10, 1000, 1e5} {
			num := (ContinuousCDF(x+h, s, n) - ContinuousCDF(x-h, s, n)) / (2 * h)
			ana := ContinuousPDF(x, s, n)
			if !almostEqual(num, ana, 1e-5) {
				t.Errorf("s=%v x=%v: numeric %v vs analytic %v", s, x, num, ana)
			}
		}
	}
}

func TestContinuousPDFOutsideDomain(t *testing.T) {
	if got := ContinuousPDF(0.5, 0.8, 100); got != 0 {
		t.Errorf("PDF(0.5) = %v, want 0", got)
	}
	if got := ContinuousPDF(200, 0.8, 100); got != 0 {
		t.Errorf("PDF(200) = %v, want 0", got)
	}
}

func TestBoundaryMass(t *testing.T) {
	// rho = 1/F'(c) = c^s (N^(1-s)-1)/(1-s) for s != 1.
	const c, s, n = 1000.0, 0.8, 1e6
	want := math.Pow(c, s) * (math.Pow(n, 1-s) - 1) / (1 - s)
	if got := BoundaryMass(c, s, n); !almostEqual(got, want, 1e-12) {
		t.Errorf("BoundaryMass = %v, want %v", got, want)
	}
	if got := BoundaryMass(0.5, s, n); !math.IsInf(got, 1) {
		t.Errorf("BoundaryMass outside domain = %v, want +Inf", got)
	}
}

func TestSamplerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSampler(0, 10, rng); err == nil {
		t.Error("NewSampler(0, ...) should fail")
	}
	if _, err := NewSampler(0.8, 0, rng); err == nil {
		t.Error("NewSampler(_, 0, ...) should fail")
	}
	if _, err := NewSampler(0.8, 10, nil); err == nil {
		t.Error("NewSampler with nil rng should fail")
	}
}

func TestSamplerRange(t *testing.T) {
	for _, s := range []float64{0.3, 0.8, 1.0, 1.5} {
		rng := rand.New(rand.NewSource(42))
		sm, err := NewSampler(s, 1000, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			k := sm.Next()
			if k < 1 || k > 1000 {
				t.Fatalf("s=%v: sample %d outside [1,1000]", s, k)
			}
		}
	}
}

// TestSamplerMatchesPMF draws a large sample and checks empirical
// frequencies of the head ranks against the exact PMF.
func TestSamplerMatchesPMF(t *testing.T) {
	const n, draws = 1000, 400000
	for _, s := range []float64{0.6, 0.8, 1.2} {
		rng := rand.New(rand.NewSource(7))
		sm, err := NewSampler(s, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n+1)
		for i := 0; i < draws; i++ {
			counts[sm.Next()]++
		}
		d := MustNew(s, n)
		for rank := int64(1); rank <= 5; rank++ {
			emp := float64(counts[rank]) / draws
			exp := d.PMF(rank)
			if math.Abs(emp-exp) > 0.01+0.1*exp {
				t.Errorf("s=%v rank=%d: empirical %v vs pmf %v", s, rank, emp, exp)
			}
		}
	}
}

// TestSamplerAgainstTableOracle compares rejection-inversion with the exact
// inverse-CDF table sampler on aggregate statistics.
func TestSamplerAgainstTableOracle(t *testing.T) {
	const n, draws = 200, 200000
	for _, s := range []float64{0.5, 1.0, 1.7} {
		d := MustNew(s, n)
		ts, err := NewTableSampler(d, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		ri, err := NewSampler(s, n, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		var sumT, sumR float64
		for i := 0; i < draws; i++ {
			sumT += float64(ts.Next())
			sumR += float64(ri.Next())
		}
		meanT, meanR := sumT/draws, sumR/draws
		if math.Abs(meanT-meanR) > 0.05*meanT+1 {
			t.Errorf("s=%v: table mean %v vs rejection mean %v", s, meanT, meanR)
		}
	}
}

func TestSamplerHugePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sm, err := NewSampler(0.8, 1_000_000_000_000, rng) // 10^12 per Table IV upper range
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		k := sm.Next()
		if k < 1 || k > 1_000_000_000_000 {
			t.Fatalf("sample %d outside range", k)
		}
	}
}

func TestTableSamplerValidation(t *testing.T) {
	d := MustNew(0.8, 10)
	if _, err := NewTableSampler(d, nil); err == nil {
		t.Error("NewTableSampler with nil rng should fail")
	}
	huge := MustNew(0.8, 1<<25)
	if _, err := NewTableSampler(huge, rand.New(rand.NewSource(1))); err == nil {
		t.Error("NewTableSampler beyond table limit should fail")
	}
}

func BenchmarkHarmonicLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Harmonic(1_000_000_000, 0.8)
	}
}

func BenchmarkSamplerNext(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sm, err := NewSampler(0.8, 1_000_000, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.Next()
	}
}
