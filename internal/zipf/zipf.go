// Package zipf implements the Zipf content-popularity model used
// throughout the paper "Coordinating In-Network Caching in Content-Centric
// Networks" (ICDCS 2013): the probability mass function f(i;s,N) of Eq. (1),
// the cumulative popularity F(k;s,N), generalized harmonic numbers, the
// continuous approximation of Eq. (6), and a random sampler that is valid
// for any exponent s > 0 (the standard library's math/rand Zipf requires
// s > 1, which excludes the empirically common range s in (0,1)).
package zipf

import (
	"errors"
	"fmt"
	"math"
)

// exactHarmonicLimit is the largest k for which Harmonic sums term by
// term. Beyond it an Euler-Maclaurin tail keeps evaluation O(1) while
// staying accurate to well below 1e-10 relative error.
const exactHarmonicLimit = 1 << 16

// Harmonic returns the generalized harmonic number H_{k,s} = sum_{j=1..k} j^-s.
// It returns 0 for k <= 0. The exponent s may be any real number, although
// the paper (and this repository) use s in (0,2).
func Harmonic(k int64, s float64) float64 {
	switch {
	case k <= 0:
		return 0
	case k <= exactHarmonicLimit:
		return harmonicExact(k, s)
	default:
		head := harmonicExact(exactHarmonicLimit, s)
		return head + harmonicTail(exactHarmonicLimit, k, s)
	}
}

// harmonicExact sums j^-s for j = 1..k with Kahan compensation. Summation
// runs from the smallest terms (largest j) upward to limit cancellation.
func harmonicExact(k int64, s float64) float64 {
	var sum, comp float64
	for j := k; j >= 1; j-- {
		term := math.Pow(float64(j), -s)
		y := term - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// harmonicTail approximates sum_{j=m+1..k} j^-s via the Euler-Maclaurin
// formula on [m, k]:
//
//	sum = integral_m^k t^-s dt + (f(k)-f(m))/2 + (f'(k)-f'(m))/12 + ...
//
// With m = 2^16 the first correction terms already put the error far below
// floating-point noise for the s range used here.
func harmonicTail(m, k int64, s float64) float64 {
	fm, fk := math.Pow(float64(m), -s), math.Pow(float64(k), -s)
	integral := integralPow(float64(m), float64(k), s)
	// f'(t) = -s * t^(-s-1)
	dfm := -s * fm / float64(m)
	dfk := -s * fk / float64(k)
	return integral + (fk-fm)/2 + (dfk-dfm)/12
}

// integralPow returns the integral of t^-s dt over [lo, hi], handling the
// logarithmic s = 1 case.
func integralPow(lo, hi, s float64) float64 {
	if s == 1 {
		return math.Log(hi / lo)
	}
	return (math.Pow(hi, 1-s) - math.Pow(lo, 1-s)) / (1 - s)
}

// Dist is a Zipf distribution with exponent S over ranks 1..N.
// The zero value is not usable; construct with New.
type Dist struct {
	s  float64
	n  int64
	hn float64 // H_{N,s}
}

// New returns a Zipf distribution with exponent s over n ranked contents.
// It requires s > 0 and n >= 1. The paper restricts s to (0,1) U (1,2) for
// the analytical model; the distribution itself is well defined for any
// positive exponent, including s = 1.
func New(s float64, n int64) (*Dist, error) {
	if !(s > 0) || math.IsInf(s, 1) || math.IsNaN(s) {
		return nil, fmt.Errorf("zipf: exponent s must be a positive finite number, got %v", s)
	}
	if n < 1 {
		return nil, fmt.Errorf("zipf: population size must be >= 1, got %d", n)
	}
	return &Dist{s: s, n: n, hn: Harmonic(n, s)}, nil
}

// MustNew is New but panics on invalid parameters. It is intended for
// package-level tables and tests where the parameters are constants.
func MustNew(s float64, n int64) *Dist {
	d, err := New(s, n)
	if err != nil {
		panic(err)
	}
	return d
}

// S returns the Zipf exponent.
func (d *Dist) S() float64 { return d.s }

// N returns the population size.
func (d *Dist) N() int64 { return d.n }

// PMF returns f(i; s, N) = i^-s / H_{N,s}, the request probability of the
// i-th ranked content (Eq. 1). Ranks outside [1, N] have probability 0.
func (d *Dist) PMF(i int64) float64 {
	if i < 1 || i > d.n {
		return 0
	}
	return math.Pow(float64(i), -d.s) / d.hn
}

// CDF returns F(k; s, N) = H_{k,s} / H_{N,s}, the total request probability
// of the top-k ranked contents. It is 0 for k <= 0 and 1 for k >= N.
func (d *Dist) CDF(k int64) float64 {
	switch {
	case k <= 0:
		return 0
	case k >= d.n:
		return 1
	default:
		return Harmonic(k, d.s) / d.hn
	}
}

// ErrRange reports a continuous-approximation argument outside its domain.
var ErrRange = errors.New("zipf: argument outside (0, N]")

// ContinuousCDF returns the paper's Eq. (6) continuous approximation
//
//	F(x; s, N) ~= (x^(1-s) - 1) / (N^(1-s) - 1)
//
// extended with the logarithmic limit ln(x)/ln(N) at s = 1. The result is
// clamped to [0, 1]; x below 1 maps to 0 and x above N maps to 1, matching
// how the model consumes it (cache sizes below one content cache nothing).
func ContinuousCDF(x, s, n float64) float64 {
	switch {
	case x <= 1:
		return 0
	case x >= n:
		return 1
	}
	var v float64
	if s == 1 {
		v = math.Log(x) / math.Log(n)
	} else {
		v = (math.Pow(x, 1-s) - 1) / (math.Pow(n, 1-s) - 1)
	}
	return math.Min(1, math.Max(0, v))
}

// ContinuousPDF returns d/dx of ContinuousCDF on (1, N):
//
//	F'(x) = (1-s)/(N^(1-s)-1) * x^-s      (s != 1)
//	F'(x) = 1/(ln N) * x^-1               (s == 1)
//
// Outside [1, N] the density is 0; at the endpoints the one-sided
// derivative from inside the domain is returned, so optimizers see the
// correct gradient at the boundary.
func ContinuousPDF(x, s, n float64) float64 {
	if x < 1 || x > n {
		return 0
	}
	if s == 1 {
		return 1 / (math.Log(n) * x)
	}
	return (1 - s) / (math.Pow(n, 1-s) - 1) * math.Pow(x, -s)
}

// BoundaryMass returns 1/F'(c), the request-mass scale at cache size c.
// The figure harness uses it as the coordination-cost amortization rho
// (see DESIGN.md section 4): rho = c^s * (N^(1-s)-1)/(1-s).
func BoundaryMass(c, s, n float64) float64 {
	p := ContinuousPDF(c, s, n)
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}
