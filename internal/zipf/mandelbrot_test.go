package zipf

import (
	"math"
	"testing"
)

func TestNewMandelbrotValidation(t *testing.T) {
	if _, err := NewMandelbrot(0, 1, 10); err == nil {
		t.Error("zero exponent should fail")
	}
	if _, err := NewMandelbrot(0.8, -1, 10); err == nil {
		t.Error("negative shift should fail")
	}
	if _, err := NewMandelbrot(0.8, 1, 0); err == nil {
		t.Error("empty population should fail")
	}
}

// TestMandelbrotDegeneratesToZipf: q = 0 must reproduce pure Zipf
// exactly.
func TestMandelbrotDegeneratesToZipf(t *testing.T) {
	const n = 5000
	for _, s := range []float64{0.5, 0.8, 1.3} {
		m, err := NewMandelbrot(s, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		d := MustNew(s, n)
		for _, i := range []int64{1, 7, 100, n} {
			if !almostEqual(m.PMF(i), d.PMF(i), 1e-12) {
				t.Errorf("s=%v: PMF(%d) %v vs Zipf %v", s, i, m.PMF(i), d.PMF(i))
			}
		}
		for _, k := range []int64{1, 50, 2500, n} {
			if !almostEqual(m.CDF(k), d.CDF(k), 1e-12) {
				t.Errorf("s=%v: CDF(%d) %v vs Zipf %v", s, k, m.CDF(k), d.CDF(k))
			}
		}
	}
}

func TestMandelbrotPMFSumsToOne(t *testing.T) {
	m, err := NewMandelbrot(0.8, 25, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := int64(1); i <= m.N(); i++ {
		sum += m.PMF(i)
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("PMF sums to %v", sum)
	}
	if m.CDF(0) != 0 || m.CDF(m.N()) != 1 || m.CDF(m.N()+5) != 1 {
		t.Error("CDF endpoints wrong")
	}
}

// TestMandelbrotFlattensHead: a positive shift reduces the dominance of
// rank 1 relative to deeper ranks.
func TestMandelbrotFlattensHead(t *testing.T) {
	pure, err := NewMandelbrot(0.8, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := NewMandelbrot(0.8, 50, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.HeadFlattening(100) >= pure.HeadFlattening(100) {
		t.Errorf("shift did not flatten the head: %v vs %v",
			shifted.HeadFlattening(100), pure.HeadFlattening(100))
	}
	// Pure Zipf's dominance ratio is exactly k^s.
	if !almostEqual(pure.HeadFlattening(100), math.Pow(100, 0.8), 1e-9) {
		t.Errorf("pure head flattening = %v, want %v", pure.HeadFlattening(100), math.Pow(100, 0.8))
	}
}

// TestShiftedHarmonicTail checks the Euler-Maclaurin path against brute
// force past the exact limit.
func TestShiftedHarmonicTail(t *testing.T) {
	const k = exactHarmonicLimit * 3
	for _, q := range []float64{0.5, 10, 200} {
		for _, s := range []float64{0.6, 1.0, 1.4} {
			var want float64
			for j := int64(k); j >= 1; j-- {
				want += math.Pow(float64(j)+q, -s)
			}
			got := shiftedHarmonic(k, q, s)
			if !almostEqual(got, want, 1e-10) {
				t.Errorf("q=%v s=%v: %v vs brute force %v", q, s, got, want)
			}
		}
	}
}

func TestMandelbrotAccessors(t *testing.T) {
	m, err := NewMandelbrot(1.1, 7, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m.S() != 1.1 || m.Q() != 7 || m.N() != 99 {
		t.Errorf("accessors wrong: %v %v %v", m.S(), m.Q(), m.N())
	}
	if m.PMF(0) != 0 || m.PMF(100) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
}
