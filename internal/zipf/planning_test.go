package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRankForMassRoundTrip(t *testing.T) {
	const n = 1e6
	for _, s := range []float64{0.5, 0.8, 1.0, 1.3} {
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			x, err := RankForMass(q, s, n)
			if err != nil {
				t.Fatalf("s=%v q=%v: %v", s, q, err)
			}
			if got := ContinuousCDF(x, s, n); math.Abs(got-q) > 1e-9 {
				t.Errorf("s=%v: F(RankForMass(%v)) = %v", s, q, got)
			}
		}
	}
}

func TestRankForMassEndpoints(t *testing.T) {
	x, err := RankForMass(0, 0.8, 1000)
	if err != nil || x != 1 {
		t.Errorf("RankForMass(0) = %v, %v", x, err)
	}
	x, err = RankForMass(1, 0.8, 1000)
	if err != nil || x != 1000 {
		t.Errorf("RankForMass(1) = %v, %v", x, err)
	}
}

func TestRankForMassErrors(t *testing.T) {
	if _, err := RankForMass(-0.1, 0.8, 100); err == nil {
		t.Error("negative mass should fail")
	}
	if _, err := RankForMass(1.1, 0.8, 100); err == nil {
		t.Error("mass > 1 should fail")
	}
	if _, err := RankForMass(0.5, 0, 100); err == nil {
		t.Error("zero exponent should fail")
	}
	if _, err := RankForMass(0.5, 0.8, 1); err == nil {
		t.Error("unit population should fail")
	}
}

func TestRankForMassQuickMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		qa, qb := float64(a)/256, float64(b)/256
		if qa > qb {
			qa, qb = qb, qa
		}
		xa, err1 := RankForMass(qa, 0.8, 1e6)
		xb, err2 := RankForMass(qb, 0.8, 1e6)
		return err1 == nil && err2 == nil && xa <= xb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTailMass(t *testing.T) {
	const n = 1e6
	if got := TailMass(1, 0.8, n); got != 1 {
		t.Errorf("TailMass(1) = %v, want 1 (F clamps at x<=1)", got)
	}
	if got := TailMass(n, 0.8, n); got != 0 {
		t.Errorf("TailMass(N) = %v, want 0", got)
	}
	// The defining long-tail property: even a large cache leaves
	// substantial tail mass when s < 1.
	if got := TailMass(1e3, 0.8, n); got < 0.5 {
		t.Errorf("TailMass(1000) = %v, expected a heavy tail for s=0.8", got)
	}
}

func TestCoverageGain(t *testing.T) {
	// Pooling 20 routers multiplies covered mass.
	g := CoverageGain(1000, 500, 0.8, 1e6, 20)
	if g <= 1 {
		t.Errorf("CoverageGain = %v, want > 1", g)
	}
	if got := CoverageGain(1000, 0, 0.8, 1e6, 20); math.Abs(got-1) > 1e-12 {
		t.Errorf("CoverageGain at x=0 = %v, want 1", got)
	}
	if got := CoverageGain(0.5, 10, 0.8, 1e6, 20); got != 0 {
		t.Errorf("CoverageGain with empty base = %v, want 0", got)
	}
}
