package zipf

import (
	"fmt"
	"math"
)

// This file implements the Zipf-Mandelbrot generalization
// f(i) ∝ (i+q)^-s, whose flattened head (q > 0) matches measured web and
// video popularity better than pure Zipf in several of the measurement
// studies the paper cites. The model itself uses pure Zipf (q = 0); the
// Mandelbrot form quantifies how sensitive conclusions are to the
// head-flattening.

// Mandelbrot is a Zipf-Mandelbrot distribution over ranks 1..N with
// exponent S and shift Q. Construct with NewMandelbrot.
type Mandelbrot struct {
	s  float64
	q  float64
	n  int64
	hn float64 // sum_{j=1..n} (j+q)^-s
}

// NewMandelbrot returns a Zipf-Mandelbrot distribution. It requires
// s > 0, q >= 0, and n >= 1; q = 0 degenerates to pure Zipf.
func NewMandelbrot(s, q float64, n int64) (*Mandelbrot, error) {
	if !(s > 0) || math.IsNaN(s) || math.IsInf(s, 1) {
		return nil, fmt.Errorf("zipf: Mandelbrot exponent must be positive and finite, got %v", s)
	}
	if !(q >= 0) || math.IsInf(q, 1) {
		return nil, fmt.Errorf("zipf: Mandelbrot shift must be >= 0 and finite, got %v", q)
	}
	if n < 1 {
		return nil, fmt.Errorf("zipf: population size must be >= 1, got %d", n)
	}
	return &Mandelbrot{s: s, q: q, n: n, hn: shiftedHarmonic(n, q, s)}, nil
}

// shiftedHarmonic returns sum_{j=1..k} (j+q)^-s, reusing the
// Euler-Maclaurin machinery through a change of variable.
func shiftedHarmonic(k int64, q, s float64) float64 {
	if k <= 0 {
		return 0
	}
	if k <= exactHarmonicLimit {
		var sum, comp float64
		for j := k; j >= 1; j-- {
			term := math.Pow(float64(j)+q, -s)
			y := term - comp
			t := sum + y
			comp = (t - sum) - y
			sum = t
		}
		return sum
	}
	head := shiftedHarmonic(exactHarmonicLimit, q, s)
	m, kf := float64(exactHarmonicLimit)+q, float64(k)+q
	fm, fk := math.Pow(m, -s), math.Pow(kf, -s)
	integral := integralPow(m, kf, s)
	dfm := -s * fm / m
	dfk := -s * fk / kf
	return head + integral + (fk-fm)/2 + (dfk-dfm)/12
}

// S returns the exponent.
func (m *Mandelbrot) S() float64 { return m.s }

// Q returns the shift.
func (m *Mandelbrot) Q() float64 { return m.q }

// N returns the population size.
func (m *Mandelbrot) N() int64 { return m.n }

// PMF returns the request probability of the i-th ranked content.
func (m *Mandelbrot) PMF(i int64) float64 {
	if i < 1 || i > m.n {
		return 0
	}
	return math.Pow(float64(i)+m.q, -m.s) / m.hn
}

// CDF returns the total request probability of the top-k contents.
func (m *Mandelbrot) CDF(k int64) float64 {
	switch {
	case k <= 0:
		return 0
	case k >= m.n:
		return 1
	default:
		return shiftedHarmonic(k, m.q, m.s) / m.hn
	}
}

// HeadFlattening returns PMF(1)/PMF(k) — how dominant the top content
// is relative to rank k. Pure Zipf gives k^s; a positive shift
// compresses it, which is the distribution's defining feature.
func (m *Mandelbrot) HeadFlattening(k int64) float64 {
	pk := m.PMF(k)
	if pk == 0 {
		return math.Inf(1)
	}
	return m.PMF(1) / pk
}
