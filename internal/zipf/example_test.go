package zipf_test

import (
	"fmt"

	"ccncoord/internal/zipf"
)

// ExampleDist shows how concentrated a Zipf(0.8) catalog is: the top
// 0.1% of a million contents draws a disproportionate share of
// requests.
func ExampleDist() {
	d := zipf.MustNew(0.8, 1_000_000)
	fmt.Printf("top-1 share:    %.4f\n", d.PMF(1))
	fmt.Printf("top-1000 share: %.4f\n", d.CDF(1000))
	// Output:
	// top-1 share:    0.0134
	// top-1000 share: 0.2068
}

// ExampleContinuousCDF compares Eq. (6)'s continuous approximation with
// the exact harmonic ratio.
func ExampleContinuousCDF() {
	exact := zipf.MustNew(0.8, 1_000_000).CDF(1000)
	approx := zipf.ContinuousCDF(1000, 0.8, 1e6)
	fmt.Printf("exact %.4f vs continuous %.4f\n", exact, approx)
	// Output: exact 0.2068 vs continuous 0.2008
}

// ExampleRankForMass answers the capacity-planning question "how many
// contents cover 90% of requests?".
func ExampleRankForMass() {
	x, err := zipf.RankForMass(0.9, 0.8, 1e6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f contents cover 90%% of requests\n", x)
	// Output: 611481 contents cover 90% of requests
}
