package cache

import (
	"testing"
	"testing/quick"

	"ccncoord/internal/catalog"
)

func TestNegativeCapacityRejected(t *testing.T) {
	if _, err := NewLRU(-1); err == nil {
		t.Error("NewLRU(-1) should fail")
	}
	if _, err := NewFIFO(-1); err == nil {
		t.Error("NewFIFO(-1) should fail")
	}
	if _, err := NewLFU(-1); err == nil {
		t.Error("NewLFU(-1) should fail")
	}
}

func TestZeroCapacityStores(t *testing.T) {
	stores := map[string]Store{}
	lru, _ := NewLRU(0)
	fifo, _ := NewFIFO(0)
	lfu, _ := NewLFU(0)
	stores["lru"], stores["fifo"], stores["lfu"] = lru, fifo, lfu
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			if _, ok := s.Insert(1); ok {
				t.Error("zero-capacity store evicted something")
			}
			if s.Lookup(1) || s.Contains(1) || s.Len() != 0 || s.Cap() != 0 {
				t.Error("zero-capacity store admitted content")
			}
		})
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, err := NewLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(1)
	c.Insert(2)
	if !c.Lookup(1) { // 1 becomes most recent
		t.Fatal("expected hit on 1")
	}
	evicted, ok := c.Insert(3)
	if !ok || evicted != 2 {
		t.Errorf("evicted %d/%v, want 2/true", evicted, ok)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("LRU contents wrong after eviction")
	}
}

func TestLRUReinsertIsNoop(t *testing.T) {
	c, _ := NewLRU(2)
	c.Insert(1)
	if ev, ok := c.Insert(1); ok || ev != 0 {
		t.Error("re-insert must not evict")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestFIFOEvictionIgnoresHits(t *testing.T) {
	c, _ := NewFIFO(2)
	c.Insert(1)
	c.Insert(2)
	c.Lookup(1) // FIFO ignores recency
	evicted, ok := c.Insert(3)
	if !ok || evicted != 1 {
		t.Errorf("evicted %d/%v, want 1/true", evicted, ok)
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c, _ := NewLFU(3)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	// Make 1 and 3 popular.
	for i := 0; i < 3; i++ {
		c.Lookup(1)
		c.Lookup(3)
	}
	evicted, ok := c.Insert(4)
	if !ok || evicted != 2 {
		t.Errorf("evicted %d/%v, want 2/true", evicted, ok)
	}
}

func TestLFUTieBreaksByAge(t *testing.T) {
	c, _ := NewLFU(2)
	c.Insert(1)
	c.Insert(2)
	// Equal counts: the older entry (1) must go first.
	evicted, ok := c.Insert(3)
	if !ok || evicted != 1 {
		t.Errorf("evicted %d/%v, want 1/true", evicted, ok)
	}
}

func TestLFUInsertExistingBumpsCount(t *testing.T) {
	c, _ := NewLFU(2)
	c.Insert(1)
	c.Insert(2)
	c.Insert(1) // bumps 1's count to 2
	evicted, ok := c.Insert(3)
	if !ok || evicted != 2 {
		t.Errorf("evicted %d/%v, want 2/true", evicted, ok)
	}
}

func TestStatic(t *testing.T) {
	s, err := NewStatic([]catalog.ID{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Cap() != 3 {
		t.Errorf("Len/Cap = %d/%d, want 3/3", s.Len(), s.Cap())
	}
	if !s.Lookup(5) || s.Lookup(2) {
		t.Error("static lookup wrong")
	}
	if _, ok := s.Insert(2); ok {
		t.Error("static store must not admit")
	}
	if s.Contains(2) {
		t.Error("insert on static store must be a no-op")
	}
	if _, err := NewStatic([]catalog.ID{1, 1}); err == nil {
		t.Error("duplicate ids should fail")
	}
	if _, err := NewStatic([]catalog.ID{0}); err == nil {
		t.Error("invalid id should fail")
	}
}

func TestTopKAndRankRange(t *testing.T) {
	top := TopK(3)
	if len(top) != 3 || top[0] != 1 || top[2] != 3 {
		t.Errorf("TopK(3) = %v", top)
	}
	rr := RankRange(5, 7)
	if len(rr) != 3 || rr[0] != 5 || rr[2] != 7 {
		t.Errorf("RankRange(5,7) = %v", rr)
	}
	if RankRange(7, 5) != nil {
		t.Error("inverted range should be nil")
	}
}

func TestPartitioned(t *testing.T) {
	local, _ := NewLRU(2)
	coord, err := NewStatic([]catalog.ID{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartitioned(local, coord)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cap() != 4 {
		t.Errorf("Cap = %d, want 4", p.Cap())
	}
	if !p.Lookup(10) {
		t.Error("coordinated content not visible")
	}
	p.Insert(1)
	if !p.Contains(1) || p.Len() != 3 {
		t.Errorf("after insert: contains=%v len=%d", p.Contains(1), p.Len())
	}
	// Content already in the coordinated part must not be duplicated into
	// the local part.
	if _, ok := p.Insert(10); ok {
		t.Error("insert of coordinated content evicted locally")
	}
	if local.Contains(10) {
		t.Error("coordinated content duplicated into local store")
	}
	if _, err := NewPartitioned(nil, coord); err == nil {
		t.Error("nil local part should fail")
	}
}

// TestQuickCapacityInvariant property: under arbitrary insert/lookup
// streams, no policy exceeds its capacity and Len matches Contains.
func TestQuickCapacityInvariant(t *testing.T) {
	mk := map[string]func() Store{
		"lru":  func() Store { s, _ := NewLRU(8); return s },
		"fifo": func() Store { s, _ := NewFIFO(8); return s },
		"lfu":  func() Store { s, _ := NewLFU(8); return s },
	}
	for name, newStore := range mk {
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint8) bool {
				s := newStore()
				live := make(map[catalog.ID]struct{})
				for _, op := range ops {
					id := catalog.ID(op%32 + 1)
					if op%3 == 0 {
						s.Lookup(id)
						continue
					}
					evicted, ok := s.Insert(id)
					live[id] = struct{}{}
					if ok {
						delete(live, evicted)
					}
					if s.Len() > s.Cap() {
						return false
					}
				}
				if s.Len() != len(live) {
					return false
				}
				for id := range live {
					if !s.Contains(id) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestLFUHeapConsistency property: repeated mixed operations keep the
// eviction victim the minimum-frequency entry.
func TestLFUHeapConsistency(t *testing.T) {
	c, _ := NewLFU(4)
	counts := map[catalog.ID]int64{}
	for i := 0; i < 1000; i++ {
		id := catalog.ID(i%7 + 1)
		if c.Contains(id) {
			c.Lookup(id)
			counts[id]++
			continue
		}
		evicted, ok := c.Insert(id)
		counts[id] = 1
		if ok {
			// The victim's count must not exceed any survivor's count.
			for other := range counts {
				if other != evicted && c.Contains(other) && counts[other] < counts[evicted] {
					t.Fatalf("iteration %d: evicted %d (count %d) while %d has count %d",
						i, evicted, counts[evicted], other, counts[other])
				}
			}
			delete(counts, evicted)
		}
	}
}

func BenchmarkLRUInsertLookup(b *testing.B) {
	c, _ := NewLRU(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := catalog.ID(i%4096 + 1)
		if !c.Lookup(id) {
			c.Insert(id)
		}
	}
}

func BenchmarkLFUInsertLookup(b *testing.B) {
	c, _ := NewLFU(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := catalog.ID(i%4096 + 1)
		if !c.Lookup(id) {
			c.Insert(id)
		}
	}
}
