package cache_test

import (
	"fmt"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
)

// ExamplePartitioned builds the paper's split store: a dynamic local
// part plus a statically provisioned coordinated slice.
func ExamplePartitioned() {
	local, err := cache.NewLRU(2)
	if err != nil {
		panic(err)
	}
	coordinated, err := cache.NewStatic([]catalog.ID{101, 104}) // this router's stripe
	if err != nil {
		panic(err)
	}
	store, err := cache.NewPartitioned(local, coordinated)
	if err != nil {
		panic(err)
	}
	store.Insert(1) // popular content admitted locally
	fmt.Println(store.Lookup(1), store.Lookup(104), store.Lookup(999))
	// Output: true true false
}

// ExampleLRU demonstrates eviction order.
func ExampleLRU() {
	c, err := cache.NewLRU(2)
	if err != nil {
		panic(err)
	}
	c.Insert(1)
	c.Insert(2)
	c.Lookup(1)               // 1 becomes most recent
	evicted, _ := c.Insert(3) // 2 is the LRU victim
	fmt.Println(evicted)
	// Output: 2
}
