package cache

import (
	"testing"
	"testing/quick"

	"ccncoord/internal/catalog"
)

func TestNewSLRUValidation(t *testing.T) {
	if _, err := NewSLRU(-1, 0.5); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := NewSLRU(10, 0); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := NewSLRU(10, 1); err == nil {
		t.Error("fraction 1 should fail")
	}
	c, err := NewSLRU(10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cap() != 10 {
		t.Errorf("Cap = %d, want 10", c.Cap())
	}
}

func TestSLRUPromotionProtectsPopular(t *testing.T) {
	// capacity 4: 2 protected + 2 probation.
	c, err := NewSLRU(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(1)
	c.Insert(2)
	// Promote 1 and 2 into the protected segment.
	if !c.Lookup(1) || !c.Lookup(2) {
		t.Fatal("expected hits")
	}
	// A scan of one-shot contents flows through probation only.
	for id := catalog.ID(10); id < 20; id++ {
		c.Insert(id)
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Error("protected contents displaced by a scan")
	}
	if c.Len() > c.Cap() {
		t.Errorf("Len %d exceeds Cap %d", c.Len(), c.Cap())
	}
}

func TestSLRUDemotion(t *testing.T) {
	c, err := NewSLRU(4, 0.5) // protected cap 2
	if err != nil {
		t.Fatal(err)
	}
	for id := catalog.ID(1); id <= 3; id++ {
		c.Insert(id)
		c.Lookup(id) // promote each in turn
	}
	// Promoting 3 must demote the protected LRU (1) back to probation,
	// not evict it.
	if !c.Contains(1) {
		t.Error("demoted content evicted outright")
	}
	// Everything still within capacity.
	if c.Len() > c.Cap() {
		t.Errorf("Len %d exceeds Cap %d", c.Len(), c.Cap())
	}
}

func TestSLRUZeroCapacity(t *testing.T) {
	c, err := NewSLRU(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Insert(1); ok || c.Contains(1) || c.Len() != 0 {
		t.Error("zero-capacity SLRU admitted content")
	}
}

func TestNewTwoQValidation(t *testing.T) {
	if _, err := NewTwoQ(-1, 0.25); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := NewTwoQ(10, 0); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := NewTwoQ(10, 1); err == nil {
		t.Error("fraction 1 should fail")
	}
}

func TestTwoQScanResistance(t *testing.T) {
	// capacity 8: 2 in A1in, 6 in Am.
	c, err := NewTwoQ(8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Establish 1 and 2 in Am: insert, evict through A1in, re-insert.
	c.Insert(1)
	c.Insert(2)
	c.Insert(3) // evicts 1 from A1in -> ghost
	c.Insert(4) // evicts 2 from A1in -> ghost
	c.Insert(1) // remembered -> Am
	c.Insert(2) // remembered -> Am
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("re-admitted contents missing")
	}
	// A long scan of fresh ids must not displace Am residents.
	for id := catalog.ID(100); id < 140; id++ {
		c.Insert(id)
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Error("scan displaced main-queue contents")
	}
	if c.Len() > c.Cap() {
		t.Errorf("Len %d exceeds Cap %d", c.Len(), c.Cap())
	}
}

func TestTwoQGhostBounded(t *testing.T) {
	c, err := NewTwoQ(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for id := catalog.ID(1); id <= 100; id++ {
		c.Insert(id)
	}
	if c.out.Len() > c.outCap {
		t.Errorf("ghost list %d exceeds bound %d", c.out.Len(), c.outCap)
	}
	if len(c.ghost) != c.out.Len() {
		t.Errorf("ghost map %d out of sync with list %d", len(c.ghost), c.out.Len())
	}
}

func TestTwoQZeroCapacity(t *testing.T) {
	c, err := NewTwoQ(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Insert(1); ok || c.Contains(1) {
		t.Error("zero-capacity 2Q admitted content")
	}
}

// TestSegmentedQuickInvariants property: capacity bounds and
// Len/Contains consistency hold under arbitrary operation streams for
// both policies.
func TestSegmentedQuickInvariants(t *testing.T) {
	mk := map[string]func() Store{
		"slru": func() Store { s, _ := NewSLRU(8, 0.5); return s },
		"twoq": func() Store { s, _ := NewTwoQ(8, 0.25); return s },
	}
	for name, newStore := range mk {
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint8) bool {
				s := newStore()
				for _, op := range ops {
					id := catalog.ID(op%32 + 1)
					if op%3 == 0 {
						before := s.Contains(id)
						if s.Lookup(id) != before {
							return false
						}
					} else {
						s.Insert(id)
					}
					if s.Len() > s.Cap() {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSLRUBeatsLRUOnScans: on a mixed popular+scan workload SLRU must
// retain the popular set at least as well as LRU.
func TestSLRUBeatsLRUOnScans(t *testing.T) {
	hitRatio := func(s Store) float64 {
		hits, total := 0, 0
		for round := 0; round < 50; round++ {
			// Popular working set.
			for id := catalog.ID(1); id <= 4; id++ {
				total++
				if s.Lookup(id) {
					hits++
				} else {
					s.Insert(id)
				}
			}
			// Interfering scan.
			for k := 0; k < 6; k++ {
				id := catalog.ID(1000 + round*6 + k)
				if !s.Lookup(id) {
					s.Insert(id)
				}
			}
		}
		return float64(hits) / float64(total)
	}
	lru, _ := NewLRU(8)
	slru, _ := NewSLRU(8, 0.5)
	if hitRatio(slru) < hitRatio(lru) {
		t.Errorf("SLRU hit ratio below LRU on scan workload")
	}
}
