// Package cache implements the content-store policies the simulator and
// the provisioning model use: the classic replacement baselines (LRU,
// LFU, FIFO), a static provisioned store, and the paper's partitioned
// store that splits capacity between a non-coordinated local part and a
// coordinated part holding the router's assigned slice of the shared
// rank band.
package cache

import (
	"container/heap"
	"container/list"
	"fmt"

	"ccncoord/internal/catalog"
)

// Store is a fixed-capacity content store. Implementations are not safe
// for concurrent use; the discrete-event simulator is single-threaded by
// construction.
type Store interface {
	// Lookup reports whether id is cached, updating any
	// recency/frequency bookkeeping the policy maintains (a "hit" in
	// cache terms).
	Lookup(id catalog.ID) bool
	// Contains reports whether id is cached without side effects.
	Contains(id catalog.ID) bool
	// Insert offers id to the store after a miss. The policy decides
	// whether to admit it and what to evict; it returns the evicted ID
	// and true if an eviction happened.
	Insert(id catalog.ID) (evicted catalog.ID, ok bool)
	// Len returns the number of cached contents.
	Len() int
	// Cap returns the store capacity in unit contents.
	Cap() int
}

// validateCap rejects negative capacities. Zero is allowed: the paper's
// R0 router has no content store.
func validateCap(capacity int) error {
	if capacity < 0 {
		return fmt.Errorf("cache: capacity must be >= 0, got %d", capacity)
	}
	return nil
}

// --- LRU ---

// LRU is a least-recently-used store.
type LRU struct {
	capacity int
	ll       *list.List                   // front = most recent
	items    map[catalog.ID]*list.Element // value: catalog.ID
}

// NewLRU returns an LRU store with the given capacity.
func NewLRU(capacity int) (*LRU, error) {
	if err := validateCap(capacity); err != nil {
		return nil, err
	}
	return &LRU{capacity: capacity, ll: list.New(), items: make(map[catalog.ID]*list.Element, capacity)}, nil
}

// Lookup implements Store.
func (c *LRU) Lookup(id catalog.ID) bool {
	el, ok := c.items[id]
	if ok {
		c.ll.MoveToFront(el)
	}
	return ok
}

// Contains implements Store.
func (c *LRU) Contains(id catalog.ID) bool {
	_, ok := c.items[id]
	return ok
}

// Insert implements Store.
func (c *LRU) Insert(id catalog.ID) (catalog.ID, bool) {
	if c.capacity == 0 {
		return 0, false
	}
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		return 0, false
	}
	var evicted catalog.ID
	var did bool
	if c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		evicted = back.Value.(catalog.ID)
		c.ll.Remove(back)
		delete(c.items, evicted)
		did = true
	}
	c.items[id] = c.ll.PushFront(id)
	return evicted, did
}

// Len implements Store.
func (c *LRU) Len() int { return c.ll.Len() }

// Cap implements Store.
func (c *LRU) Cap() int { return c.capacity }

// --- FIFO ---

// FIFO evicts in insertion order regardless of hits.
type FIFO struct {
	capacity int
	queue    []catalog.ID
	items    map[catalog.ID]struct{}
}

// NewFIFO returns a FIFO store with the given capacity.
func NewFIFO(capacity int) (*FIFO, error) {
	if err := validateCap(capacity); err != nil {
		return nil, err
	}
	return &FIFO{capacity: capacity, items: make(map[catalog.ID]struct{}, capacity)}, nil
}

// Lookup implements Store.
func (c *FIFO) Lookup(id catalog.ID) bool { return c.Contains(id) }

// Contains implements Store.
func (c *FIFO) Contains(id catalog.ID) bool {
	_, ok := c.items[id]
	return ok
}

// Insert implements Store.
func (c *FIFO) Insert(id catalog.ID) (catalog.ID, bool) {
	if c.capacity == 0 {
		return 0, false
	}
	if c.Contains(id) {
		return 0, false
	}
	var evicted catalog.ID
	var did bool
	if len(c.queue) >= c.capacity {
		evicted = c.queue[0]
		c.queue = c.queue[1:]
		delete(c.items, evicted)
		did = true
	}
	c.queue = append(c.queue, id)
	c.items[id] = struct{}{}
	return evicted, did
}

// Len implements Store.
func (c *FIFO) Len() int { return len(c.queue) }

// Cap implements Store.
func (c *FIFO) Cap() int { return c.capacity }

// --- LFU ---

// lfuEntry is a heap node tracking a content's hit count. Ties break by
// insertion sequence (older evicts first), making the policy
// deterministic.
type lfuEntry struct {
	id    catalog.ID
	count int64
	seq   uint64
	index int
}

// lfuHeap is a min-heap by (count, seq).
type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].seq < h[j].seq
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *lfuHeap) Push(x any) {
	e := x.(*lfuEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// LFU is a least-frequently-used store (the paper's "canonical caching
// policy based on frequency or historical usage").
type LFU struct {
	capacity int
	heap     lfuHeap
	items    map[catalog.ID]*lfuEntry
	seq      uint64
}

// NewLFU returns an LFU store with the given capacity.
func NewLFU(capacity int) (*LFU, error) {
	if err := validateCap(capacity); err != nil {
		return nil, err
	}
	return &LFU{capacity: capacity, items: make(map[catalog.ID]*lfuEntry, capacity)}, nil
}

// Lookup implements Store.
func (c *LFU) Lookup(id catalog.ID) bool {
	e, ok := c.items[id]
	if !ok {
		return false
	}
	e.count++
	heap.Fix(&c.heap, e.index)
	return true
}

// Contains implements Store.
func (c *LFU) Contains(id catalog.ID) bool {
	_, ok := c.items[id]
	return ok
}

// Insert implements Store.
func (c *LFU) Insert(id catalog.ID) (catalog.ID, bool) {
	if c.capacity == 0 {
		return 0, false
	}
	if e, ok := c.items[id]; ok {
		e.count++
		heap.Fix(&c.heap, e.index)
		return 0, false
	}
	var evicted catalog.ID
	var did bool
	if len(c.heap) >= c.capacity {
		victim := heap.Pop(&c.heap).(*lfuEntry)
		delete(c.items, victim.id)
		evicted, did = victim.id, true
	}
	c.seq++
	e := &lfuEntry{id: id, count: 1, seq: c.seq}
	heap.Push(&c.heap, e)
	c.items[id] = e
	return evicted, did
}

// Len implements Store.
func (c *LFU) Len() int { return len(c.heap) }

// Cap implements Store.
func (c *LFU) Cap() int { return c.capacity }

// --- Static ---

// Static holds a fixed provisioned set of contents and never admits
// anything else. It models the steady-state stores of the analytical
// model: the non-coordinated part holds the top-ranked contents, the
// coordinated part holds an assigned rank slice.
type Static struct {
	capacity int
	items    map[catalog.ID]struct{}
}

// NewStatic returns a store pinned to exactly the given contents. The
// capacity equals len(ids); duplicates are rejected.
func NewStatic(ids []catalog.ID) (*Static, error) {
	items := make(map[catalog.ID]struct{}, len(ids))
	for _, id := range ids {
		if !id.Valid() {
			return nil, fmt.Errorf("cache: invalid content id %d", id)
		}
		if _, dup := items[id]; dup {
			return nil, fmt.Errorf("cache: duplicate content id %d", id)
		}
		items[id] = struct{}{}
	}
	return &Static{capacity: len(items), items: items}, nil
}

// Lookup implements Store.
func (c *Static) Lookup(id catalog.ID) bool { return c.Contains(id) }

// Contains implements Store.
func (c *Static) Contains(id catalog.ID) bool {
	_, ok := c.items[id]
	return ok
}

// Insert implements Store; static stores never admit new contents.
func (c *Static) Insert(catalog.ID) (catalog.ID, bool) { return 0, false }

// Len implements Store.
func (c *Static) Len() int { return len(c.items) }

// Cap implements Store.
func (c *Static) Cap() int { return c.capacity }

// StaticRange is a static store pinned to the contiguous rank interval
// [lo, hi]. It behaves exactly like NewStatic(RankRange(lo, hi)) but
// holds O(1) state instead of an O(hi-lo) set, which removes the
// per-router id-slice and map construction from the simulator's
// provisioning path: the non-coordinated local prefix of every policy is
// a contiguous top-k band. A StaticRange is immutable and safe to share.
type StaticRange struct {
	lo, hi catalog.ID
}

// NewStaticRange returns a static store over ranks [lo, hi] inclusive.
// hi = lo-1 denotes an empty store (the paper's R0 router); hi < lo-1 or
// lo < 1 is rejected.
func NewStaticRange(lo, hi int64) (*StaticRange, error) {
	if lo < 1 {
		return nil, fmt.Errorf("cache: static range start %d < 1", lo)
	}
	if hi < lo-1 {
		return nil, fmt.Errorf("cache: static range [%d, %d] is inverted", lo, hi)
	}
	return &StaticRange{lo: catalog.ID(lo), hi: catalog.ID(hi)}, nil
}

// Lookup implements Store.
func (c *StaticRange) Lookup(id catalog.ID) bool { return c.Contains(id) }

// Contains implements Store.
func (c *StaticRange) Contains(id catalog.ID) bool { return id >= c.lo && id <= c.hi }

// Insert implements Store; static stores never admit new contents.
func (c *StaticRange) Insert(catalog.ID) (catalog.ID, bool) { return 0, false }

// Len implements Store.
func (c *StaticRange) Len() int { return int(c.hi - c.lo + 1) }

// Cap implements Store.
func (c *StaticRange) Cap() int { return c.Len() }

// TopK returns the ids of ranks 1..k, the non-coordinated steady state.
func TopK(k int64) []catalog.ID {
	ids := make([]catalog.ID, 0, k)
	for i := int64(1); i <= k; i++ {
		ids = append(ids, catalog.ID(i))
	}
	return ids
}

// RankRange returns the ids of ranks [from, to] inclusive.
func RankRange(from, to int64) []catalog.ID {
	if to < from {
		return nil
	}
	ids := make([]catalog.ID, 0, to-from+1)
	for i := from; i <= to; i++ {
		ids = append(ids, catalog.ID(i))
	}
	return ids
}

// --- Partitioned ---

// Partitioned combines a local (non-coordinated) store with a
// coordinated store, the storage split the paper's model analyzes: each
// router's capacity c is divided into c-x local slots and x coordinated
// slots. Lookups consult both parts; insertions go to the local part
// only (the coordinated part is managed by the coordination protocol).
type Partitioned struct {
	Local       Store
	Coordinated Store
}

// NewPartitioned returns a partitioned store over the two parts.
func NewPartitioned(local, coordinated Store) (*Partitioned, error) {
	if local == nil || coordinated == nil {
		return nil, fmt.Errorf("cache: partitioned store requires both parts")
	}
	return &Partitioned{Local: local, Coordinated: coordinated}, nil
}

// Lookup implements Store.
func (c *Partitioned) Lookup(id catalog.ID) bool {
	// Order matters for policies with bookkeeping: prefer the local part
	// so its recency/frequency state reflects client demand.
	if c.Local.Lookup(id) {
		return true
	}
	return c.Coordinated.Lookup(id)
}

// Contains implements Store.
func (c *Partitioned) Contains(id catalog.ID) bool {
	return c.Local.Contains(id) || c.Coordinated.Contains(id)
}

// Insert implements Store. New contents are admitted by the local
// policy; contents already present anywhere are not duplicated.
func (c *Partitioned) Insert(id catalog.ID) (catalog.ID, bool) {
	if c.Contains(id) {
		return 0, false
	}
	return c.Local.Insert(id)
}

// Len implements Store.
func (c *Partitioned) Len() int { return c.Local.Len() + c.Coordinated.Len() }

// Cap implements Store.
func (c *Partitioned) Cap() int { return c.Local.Cap() + c.Coordinated.Cap() }

// Interface compliance checks.
var (
	_ Store = (*LRU)(nil)
	_ Store = (*FIFO)(nil)
	_ Store = (*LFU)(nil)
	_ Store = (*Static)(nil)
	_ Store = (*StaticRange)(nil)
	_ Store = (*Partitioned)(nil)
)
