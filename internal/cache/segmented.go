package cache

import (
	"container/list"
	"fmt"

	"ccncoord/internal/catalog"
)

// This file adds two scan-resistant replacement policies from the web
// caching literature, giving the simulator stronger dynamic baselines
// than plain LRU/LFU: Segmented LRU (SLRU) and a simplified 2Q.

// SLRU is a segmented LRU cache: newly admitted contents enter a
// probationary segment; a hit promotes a content into the protected
// segment, which only demotes back to probation (never straight out).
// One-shot contents therefore never displace proven-popular ones.
type SLRU struct {
	protectedCap int
	probationCap int
	protected    *list.List // front = most recent
	probation    *list.List
	items        map[catalog.ID]*slruEntry
}

// slruEntry locates a cached content within one of the two segments.
type slruEntry struct {
	el        *list.Element
	protected bool
}

// NewSLRU returns an SLRU store with the given total capacity;
// protectedFraction (in (0,1)) of it forms the protected segment.
// Capacity must be at least 2 so both segments are non-empty.
func NewSLRU(capacity int, protectedFraction float64) (*SLRU, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be >= 0, got %d", capacity)
	}
	if !(protectedFraction > 0 && protectedFraction < 1) {
		return nil, fmt.Errorf("cache: protected fraction %v outside (0,1)", protectedFraction)
	}
	prot := int(float64(capacity) * protectedFraction)
	if capacity > 1 && prot == 0 {
		prot = 1
	}
	if prot >= capacity && capacity > 0 {
		prot = capacity - 1
	}
	return &SLRU{
		protectedCap: prot,
		probationCap: capacity - prot,
		protected:    list.New(),
		probation:    list.New(),
		items:        make(map[catalog.ID]*slruEntry, capacity),
	}, nil
}

// Lookup implements Store.
func (c *SLRU) Lookup(id catalog.ID) bool {
	e, ok := c.items[id]
	if !ok {
		return false
	}
	if e.protected {
		c.protected.MoveToFront(e.el)
		return true
	}
	// Promote from probation to protected.
	c.probation.Remove(e.el)
	if c.protected.Len() >= c.protectedCap && c.protectedCap > 0 {
		// Demote the protected LRU back to probation's MRU position.
		victim := c.protected.Back()
		vid := victim.Value.(catalog.ID)
		c.protected.Remove(victim)
		c.items[vid] = &slruEntry{el: c.probation.PushFront(vid), protected: false}
	}
	if c.protectedCap == 0 {
		// Degenerate configuration: keep in probation.
		c.items[id] = &slruEntry{el: c.probation.PushFront(id), protected: false}
		c.evictProbationOverflow()
		return true
	}
	c.items[id] = &slruEntry{el: c.protected.PushFront(id), protected: true}
	c.evictProbationOverflow()
	return true
}

// evictProbationOverflow trims probation down to its capacity.
func (c *SLRU) evictProbationOverflow() {
	for c.probation.Len() > c.probationCap {
		victim := c.probation.Back()
		vid := victim.Value.(catalog.ID)
		c.probation.Remove(victim)
		delete(c.items, vid)
	}
}

// Contains implements Store.
func (c *SLRU) Contains(id catalog.ID) bool {
	_, ok := c.items[id]
	return ok
}

// Insert implements Store. New contents enter the probationary segment.
func (c *SLRU) Insert(id catalog.ID) (catalog.ID, bool) {
	if c.Cap() == 0 {
		return 0, false
	}
	if c.Contains(id) {
		return 0, false
	}
	var evicted catalog.ID
	var did bool
	if c.probation.Len() >= c.probationCap {
		victim := c.probation.Back()
		evicted = victim.Value.(catalog.ID)
		c.probation.Remove(victim)
		delete(c.items, evicted)
		did = true
	}
	c.items[id] = &slruEntry{el: c.probation.PushFront(id), protected: false}
	return evicted, did
}

// Len implements Store.
func (c *SLRU) Len() int { return c.probation.Len() + c.protected.Len() }

// Cap implements Store.
func (c *SLRU) Cap() int { return c.probationCap + c.protectedCap }

// TwoQ is a simplified 2Q cache (Johnson & Shasha, VLDB 1994): new
// contents enter a FIFO admission queue (A1in); contents evicted from
// it are remembered in a ghost list (A1out, ids only); a re-request of
// a remembered content admits it into the main LRU (Am). Sequential
// scans thus flow through A1in without polluting Am.
type TwoQ struct {
	inCap  int
	outCap int // ghost entries (ids only, no capacity cost)
	amCap  int

	in    *list.List // FIFO: front = newest
	out   *list.List // ghost FIFO
	am    *list.List // LRU: front = most recent
	items map[catalog.ID]*twoQEntry
	ghost map[catalog.ID]*list.Element
}

// twoQEntry locates a resident content.
type twoQEntry struct {
	el   *list.Element
	inAm bool
}

// NewTwoQ returns a 2Q store with the given total resident capacity.
// The admission queue gets inFraction (in (0,1)) of it; the ghost list
// remembers capacity ids.
func NewTwoQ(capacity int, inFraction float64) (*TwoQ, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: capacity must be >= 0, got %d", capacity)
	}
	if !(inFraction > 0 && inFraction < 1) {
		return nil, fmt.Errorf("cache: admission fraction %v outside (0,1)", inFraction)
	}
	in := int(float64(capacity) * inFraction)
	if capacity > 1 && in == 0 {
		in = 1
	}
	if in >= capacity && capacity > 0 {
		in = capacity - 1
	}
	return &TwoQ{
		inCap:  in,
		outCap: capacity,
		amCap:  capacity - in,
		in:     list.New(),
		out:    list.New(),
		am:     list.New(),
		items:  make(map[catalog.ID]*twoQEntry, capacity),
		ghost:  make(map[catalog.ID]*list.Element, capacity),
	}, nil
}

// Lookup implements Store.
func (c *TwoQ) Lookup(id catalog.ID) bool {
	e, ok := c.items[id]
	if !ok {
		return false
	}
	if e.inAm {
		c.am.MoveToFront(e.el)
	}
	// Hits in A1in deliberately do not promote (2Q's scan resistance).
	return true
}

// Contains implements Store.
func (c *TwoQ) Contains(id catalog.ID) bool {
	_, ok := c.items[id]
	return ok
}

// Insert implements Store.
func (c *TwoQ) Insert(id catalog.ID) (catalog.ID, bool) {
	if c.Cap() == 0 {
		return 0, false
	}
	if c.Contains(id) {
		return 0, false
	}
	if _, remembered := c.ghost[id]; remembered || c.inCap == 0 {
		// Recently seen: admit straight into the main LRU.
		c.forgetGhost(id)
		return c.insertAm(id)
	}
	// First sighting: admission queue.
	var evicted catalog.ID
	var did bool
	if c.in.Len() >= c.inCap {
		victim := c.in.Back()
		evicted = victim.Value.(catalog.ID)
		c.in.Remove(victim)
		delete(c.items, evicted)
		did = true
		c.remember(evicted)
	}
	c.items[id] = &twoQEntry{el: c.in.PushFront(id)}
	return evicted, did
}

// insertAm admits id into the main LRU segment.
func (c *TwoQ) insertAm(id catalog.ID) (catalog.ID, bool) {
	var evicted catalog.ID
	var did bool
	if c.am.Len() >= c.amCap {
		victim := c.am.Back()
		evicted = victim.Value.(catalog.ID)
		c.am.Remove(victim)
		delete(c.items, evicted)
		did = true
	}
	c.items[id] = &twoQEntry{el: c.am.PushFront(id), inAm: true}
	return evicted, did
}

// remember records an evicted id in the ghost list.
func (c *TwoQ) remember(id catalog.ID) {
	if c.outCap == 0 {
		return
	}
	if c.out.Len() >= c.outCap {
		oldest := c.out.Back()
		delete(c.ghost, oldest.Value.(catalog.ID))
		c.out.Remove(oldest)
	}
	c.ghost[id] = c.out.PushFront(id)
}

// forgetGhost removes id from the ghost list if present.
func (c *TwoQ) forgetGhost(id catalog.ID) {
	if el, ok := c.ghost[id]; ok {
		c.out.Remove(el)
		delete(c.ghost, id)
	}
}

// Len implements Store (resident contents only; ghosts are free).
func (c *TwoQ) Len() int { return c.in.Len() + c.am.Len() }

// Cap implements Store.
func (c *TwoQ) Cap() int { return c.inCap + c.amCap }

// Interface compliance checks.
var (
	_ Store = (*SLRU)(nil)
	_ Store = (*TwoQ)(nil)
)
