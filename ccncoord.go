// Package ccncoord is a Go reproduction of "Coordinating In-Network
// Caching in Content-Centric Networks: Model and Analysis" (Li, Xie,
// Wen, Zhang — IEEE ICDCS 2013).
//
// The paper models a content-centric network of n routers, each with
// storage capacity c, serving N Zipf-popular contents behind an origin
// server. Every router splits its capacity into a non-coordinated part
// (c-x slots replicating the globally top-ranked contents) and a
// coordinated part (x slots; the n routers jointly stripe the next n*x
// distinct ranks). The model combines the resulting mean request latency
// T(x) with the coordination communication cost W(x) into the convex
// objective T_w = alpha*T + (1-alpha)*W, yields the optimal coordination
// level l* = x*/c, and quantifies the origin-load reduction G_O and
// routing improvement G_R achieved at the optimum.
//
// This facade curates the library's stable API:
//
//   - Model / Latency / Gains: the analytical performance-cost model
//     (internal/model), including the Lemma 2 fixed point and the
//     corrected Theorem 2 closed form.
//   - Scenario / Result / Run: the packet-level CCN simulator
//     (internal/sim) that validates the model on executable routers with
//     content stores, PITs, and a measured coordination protocol.
//   - Topology helpers: the paper's four evaluation topologies and the
//     Table III parameter extraction (internal/topology).
//   - Experiment runners: regeneration of every table and figure of the
//     paper's evaluation (internal/experiments).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package ccncoord

import (
	"ccncoord/internal/catalog"
	"ccncoord/internal/coord"
	"ccncoord/internal/experiments"
	"ccncoord/internal/model"
	"ccncoord/internal/sim"
	"ccncoord/internal/topology"
	"ccncoord/internal/workload"
	"ccncoord/internal/zipf"
)

// Core analytical model (paper Sections III-IV).
type (
	// Model is the performance-cost model configuration: Zipf exponent
	// S, catalog size N, per-router capacity C, router count, tiered
	// latencies, unit coordination cost and the trade-off weight Alpha.
	Model = model.Config
	// Latency holds the tiered latencies d0 < d1 <= d2.
	Latency = model.Latency
	// Gains bundles the optimal level with G_O and G_R.
	Gains = model.Gains
	// DiscreteModel evaluates the model with exact harmonic sums.
	DiscreteModel = model.Discrete
	// HeteroModel is the heterogeneous-capacity extension (paper future
	// work).
	HeteroModel = model.HeteroConfig
)

// Packet-level simulation (validation substrate).
type (
	// Scenario configures a packet-level simulation run.
	Scenario = sim.Scenario
	// Result is the measured outcome of a simulation run.
	Result = sim.Result
	// Policy selects the storage-provisioning strategy of a run.
	Policy = sim.Policy
	// MotivatingComparison reproduces Table I.
	MotivatingComparison = sim.MotivatingComparison
)

// Provisioning policies for Scenario.Policy.
const (
	PolicyNonCoordinated = sim.PolicyNonCoordinated
	PolicyCoordinated    = sim.PolicyCoordinated
	PolicyLRU            = sim.PolicyLRU
	PolicyLFU            = sim.PolicyLFU
	PolicySLRU           = sim.PolicySLRU
	PolicyTwoQ           = sim.PolicyTwoQ
	PolicyProbCache      = sim.PolicyProbCache
)

// Coordinated-placement assignment strategies for Scenario.Assignment.
const (
	AssignStripe = sim.AssignStripe
	AssignHash   = sim.AssignHash
)

// ContentID identifies a content object by popularity rank (1 = most
// popular).
type ContentID = catalog.ID

// Topologies and experiment artifacts.
type (
	// Topology is a latency-weighted network graph.
	Topology = topology.Graph
	// TopologyParams are the Table III parameters extracted from a
	// topology.
	TopologyParams = topology.Params
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure
	// Table is a regenerated paper table.
	Table = experiments.Table
)

// Coordination protocol (paper Section III-B2 and future work).
type (
	// NodeID identifies a router within a Topology.
	NodeID = topology.NodeID
	// CoordReport is one router's observed request counts for an epoch.
	CoordReport = coord.Report
	// CoordPlacement is a coordinator's provisioning decision.
	CoordPlacement = coord.Placement
	// CoordCost tallies a coordination epoch's measured messages.
	CoordCost = coord.Cost
	// AdaptiveCoordinator re-estimates the Zipf exponent online and
	// re-optimizes the coordination level each epoch (paper future
	// work).
	AdaptiveCoordinator = coord.Adaptive
)

// Workload generation.
type (
	// Generator produces an endless stream of content requests.
	Generator = workload.Generator
	// DriftingZipf is a non-stationary request generator whose Zipf
	// exponent and hot set drift over the stream.
	DriftingZipf = workload.DriftingZipf
)

// NewDriftingZipf returns a drifting request generator; see
// internal/workload for the parameter semantics.
func NewDriftingZipf(startS, endS float64, n, horizon, epochLength, rotation, seed int64) (*DriftingZipf, error) {
	return workload.NewDriftingZipf(startS, endS, n, horizon, epochLength, rotation, seed)
}

// AdaptiveEpoch records one epoch of the closed adaptive-provisioning
// loop.
type AdaptiveEpoch = sim.AdaptiveEpoch

// AdaptiveRun executes the closed loop end to end on the packet
// simulator: non-coordinated bootstrap, per-router reports, online Zipf
// estimation, re-optimization, and installation of the estimated
// placement for the next epoch.
func AdaptiveRun(sc Scenario, base Model, epochs int) ([]AdaptiveEpoch, error) {
	return sim.AdaptiveRun(sc, base, epochs)
}

// NewAdaptiveCoordinator returns the online adaptive coordinator over
// the given routers; base supplies every model parameter except the
// Zipf exponent, which is learned from epoch reports.
func NewAdaptiveCoordinator(routers []NodeID, base Model) (*AdaptiveCoordinator, error) {
	return coord.NewAdaptive(routers, base)
}

// EstimateZipf fits a Zipf exponent to observed request counts by
// log-log regression over the top maxRanks contents (0 = all).
func EstimateZipf(counts map[ContentID]int64, maxRanks int) (float64, error) {
	return coord.EstimateZipf(counts, maxRanks)
}

// LatencyFromGamma builds a Latency from an anchor d0, the tier gap
// d1-d0, and the tiered latency ratio gamma = (d2-d1)/(d1-d0).
func LatencyFromGamma(d0, gap, gamma float64) Latency {
	return model.LatencyFromGamma(d0, gap, gamma)
}

// NewDiscrete returns the exact-harmonic variant of the model.
func NewDiscrete(cfg Model) (*DiscreteModel, error) { return model.NewDiscrete(cfg) }

// ClosedFormLevel is Theorem 2's closed-form optimal strategy at
// alpha = 1, in the derivation-consistent form
// l* = 1/(1 + gamma^(-1/s) * n^(1-1/s)) (see DESIGN.md for the erratum
// in the printed equation).
func ClosedFormLevel(gamma float64, n int, s float64) float64 {
	return model.ClosedFormLevel(gamma, n, s)
}

// BoundaryMass returns 1/F'(c), the request-mass scale at cache size c
// under Eq. (6); a physically motivated choice for Model.Amortization.
func BoundaryMass(c, s, n float64) float64 { return zipf.BoundaryMass(c, s, n) }

// Run executes a packet-level simulation scenario.
func Run(sc Scenario) (Result, error) { return sim.Run(sc) }

// MotivatingExample reproduces the paper's Section II example (Table I)
// on the packet-level simulator.
func MotivatingExample(cycles int) (MotivatingComparison, error) {
	return sim.MotivatingExample(cycles)
}

// Evaluation topologies (paper Table II). Each call returns a fresh
// mutable copy.
func Abilene() *Topology { return topology.Abilene() }

// CERNET returns the synthesized CERNET evaluation topology.
func CERNET() *Topology { return topology.CERNET() }

// GEANT returns the synthesized GEANT evaluation topology.
func GEANT() *Topology { return topology.GEANT() }

// USA returns the synthesized US-A evaluation topology.
func USA() *Topology { return topology.USA() }

// AllTopologies returns the four evaluation topologies in Table II
// order.
func AllTopologies() []*Topology { return topology.All() }

// ExtractParams computes a topology's Table III parameters.
func ExtractParams(g *Topology) (TopologyParams, error) { return topology.ExtractParams(g) }

// AllFigures regenerates Figures 4-13.
func AllFigures() ([]Figure, error) { return experiments.AllFigures() }
