package ccncoord

import (
	"math"
	"testing"
)

// TestFacadeProvisioningFlow exercises the public API end to end:
// topology -> parameters -> model -> optimum -> gains.
func TestFacadeProvisioningFlow(t *testing.T) {
	for _, g := range AllTopologies() {
		p, err := ExtractParams(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		cfg := Model{
			S: 0.8, N: 1e6, C: 1e3, Routers: p.N,
			Lat:      LatencyFromGamma(1, p.TierGapHops, 5),
			UnitCost: p.UnitCost, Alpha: 0.8, Amortization: 1e6,
		}
		gains, err := cfg.OptimalGains()
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if gains.Level <= 0 || gains.Level > 1 {
			t.Errorf("%s: level %v outside (0,1]", g.Name(), gains.Level)
		}
		if gains.OriginReduction <= 0 {
			t.Errorf("%s: no origin load reduction", g.Name())
		}
	}
}

func TestFacadeClosedForm(t *testing.T) {
	got := ClosedFormLevel(5, 20, 0.8)
	want := 1 / (1 + math.Pow(5, -1.25)*math.Pow(20, 1-1.25))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ClosedFormLevel = %v, want %v", got, want)
	}
}

func TestFacadeBoundaryMass(t *testing.T) {
	if v := BoundaryMass(1e3, 0.8, 1e6); !(v > 0) || math.IsInf(v, 0) {
		t.Errorf("BoundaryMass = %v", v)
	}
}

func TestFacadeDiscrete(t *testing.T) {
	cfg := Model{
		S: 0.8, N: 10000, C: 100, Routers: 10,
		Lat: LatencyFromGamma(1, 2, 5), Alpha: 1, UnitCost: 10,
	}
	d, err := NewDiscrete(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if x := d.OptimalX(); x < 0 || x > 100 {
		t.Errorf("discrete x* = %d", x)
	}
}

func TestFacadeSimulation(t *testing.T) {
	res, err := Run(Scenario{
		Topology:      Abilene(),
		CatalogSize:   5000,
		ZipfS:         0.8,
		Capacity:      50,
		Coordinated:   25,
		Policy:        PolicyCoordinated,
		Requests:      10000,
		Seed:          3,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginLoad <= 0 || res.OriginLoad >= 1 {
		t.Errorf("origin load = %v", res.OriginLoad)
	}
}

func TestFacadeMotivatingExample(t *testing.T) {
	cmp, err := MotivatingExample(10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Coordinated.OriginLoad != 0 {
		t.Errorf("coordinated origin load = %v", cmp.Coordinated.OriginLoad)
	}
}

func TestFacadeFigures(t *testing.T) {
	figs, err := AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 10 {
		t.Errorf("AllFigures = %d figures", len(figs))
	}
}

func TestFacadeHeteroModel(t *testing.T) {
	h := HeteroModel{
		S: 0.8, N: 1e6,
		Capacities: []float64{500, 1000, 1500},
		Lat:        LatencyFromGamma(1, 2.2842, 5),
		UnitCost:   26.7, Alpha: 0.9, Amortization: 1e6,
	}
	l, err := h.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if l < 0 || l > 1 {
		t.Errorf("hetero level = %v", l)
	}
}
