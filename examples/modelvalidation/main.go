// Model validation: sweep the coordinated allocation x on the
// packet-level simulator and compare the measured origin load against
// the analytical model's prediction 1 - F(c + (n-1)x), then demonstrate
// the online adaptive coordinator learning the Zipf exponent from
// traffic it has never been told about.
//
// Run with:
//
//	go run ./examples/modelvalidation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ccncoord"
)

func main() {
	validateOriginLoad()
	fmt.Println()
	adaptiveDemo()
}

// validateOriginLoad sweeps x and prints model vs measurement.
func validateOriginLoad() {
	const (
		catalogSize = 20000
		capacity    = 150
		zipfS       = 0.8
	)
	topo := ccncoord.USA()

	fmt.Printf("Origin load on %s: analytical model vs packet simulation\n", topo.Name())
	fmt.Printf("(N=%d, c=%d, s=%g, n=%d)\n\n", catalogSize, capacity, zipfS, topo.N())
	fmt.Printf("%6s %12s %12s %10s\n", "x", "model", "simulated", "|err|")

	cfg := ccncoord.Model{
		S: zipfS, N: catalogSize, C: capacity, Routers: topo.N(),
		Lat: ccncoord.LatencyFromGamma(1, 2.2842, 5), Alpha: 1, UnitCost: 26.7,
	}
	discrete, err := ccncoord.NewDiscrete(cfg)
	if err != nil {
		log.Fatalf("modelvalidation: %v", err)
	}

	for _, x := range []int64{0, 25, 50, 75, 100, 150} {
		policy := ccncoord.PolicyCoordinated
		if x == 0 {
			policy = ccncoord.PolicyNonCoordinated
		}
		res, err := ccncoord.Run(ccncoord.Scenario{
			Topology:      topo,
			CatalogSize:   catalogSize,
			ZipfS:         zipfS,
			Capacity:      capacity,
			Coordinated:   x,
			Policy:        policy,
			Requests:      60000,
			Seed:          7,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		})
		if err != nil {
			log.Fatalf("modelvalidation: x=%d: %v", x, err)
		}
		predicted := discrete.OriginLoad(x)
		fmt.Printf("%6d %12.4f %12.4f %10.4f\n",
			x, predicted, res.OriginLoad, abs(predicted-res.OriginLoad))
	}
	fmt.Println("\nThe executable CCN data plane lands on the model's predictions")
	fmt.Println("to within sampling noise at every coordination level.")
}

// adaptiveDemo shows the future-work online loop: the coordinator is
// given a wrong initial exponent and corrects itself from router
// reports.
func adaptiveDemo() {
	const (
		nRouters = 20
		trueS    = 1.2
	)
	routers := make([]ccncoord.NodeID, nRouters)
	for i := range routers {
		routers[i] = ccncoord.NodeID(i)
	}
	base := ccncoord.Model{
		S: 0.5, // wrong on purpose
		N: 100000, C: 100, Routers: nRouters,
		Lat:      ccncoord.LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.9,
	}
	adaptive, err := ccncoord.NewAdaptiveCoordinator(routers, base)
	if err != nil {
		log.Fatalf("modelvalidation: %v", err)
	}

	fmt.Printf("Adaptive coordination (true s = %g, initial guess %g)\n\n", trueS, base.S)
	fmt.Printf("%6s %12s %14s %12s\n", "epoch", "estimated s", "level l*", "messages")
	rng := rand.New(rand.NewSource(99))
	for epoch := 1; epoch <= 4; epoch++ {
		reports := syntheticReports(routers, trueS, 20000, rng)
		_, cost, err := adaptive.Epoch(reports)
		if err != nil {
			log.Fatalf("modelvalidation: epoch %d: %v", epoch, err)
		}
		fmt.Printf("%6d %12.3f %14.3f %12d\n",
			epoch, adaptive.LastEstimate(), adaptive.LastLevel(), cost.Total())
	}
	fmt.Println("\nThe coordinator converges to the workload's true exponent and")
	fmt.Println("provisions the corresponding optimal split without ever being")
	fmt.Println("told the popularity distribution.")
}

// syntheticReports draws per-router Zipf counts at the true exponent.
func syntheticReports(routers []ccncoord.NodeID, s float64, perRouter int, rng *rand.Rand) []ccncoord.CoordReport {
	reports := make([]ccncoord.CoordReport, 0, len(routers))
	for _, r := range routers {
		zr := rand.New(rand.NewSource(rng.Int63()))
		counts := make(map[ccncoord.ContentID]int64)
		// Inverse-CDF over a truncated catalog keeps the demo fast.
		sampler := newZipfSampler(s, 100000, zr)
		for i := 0; i < perRouter; i++ {
			counts[ccncoord.ContentID(sampler())]++
		}
		reports = append(reports, ccncoord.CoordReport{Router: r, Counts: counts})
	}
	return reports
}

// newZipfSampler returns a compact Zipf-ish sampler for the demo by
// inverting the continuous CDF of Eq. (6),
// F(x) = (x^(1-s)-1)/(N^(1-s)-1).
func newZipfSampler(s float64, n float64, rng *rand.Rand) func() int64 {
	return func() int64 {
		u := rng.Float64()
		x := math.Pow(1+u*(math.Pow(n, 1-s)-1), 1/(1-s))
		k := int64(x)
		if k < 1 {
			k = 1
		}
		if k > int64(n) {
			k = int64(n)
		}
		return k
	}
}

func abs(v float64) float64 { return math.Abs(v) }
