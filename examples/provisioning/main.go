// Provisioning walkthrough: the workflow a network carrier would follow
// with this library — load a real topology, extract its Table III
// parameters, solve for the optimal storage split at several trade-off
// weights, and inspect how the decision shifts with the popularity
// skew.
//
// Run with:
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"

	"ccncoord"
)

func main() {
	fmt.Println("Per-topology optimal provisioning (s=0.8, gamma=5, alpha=0.8)")
	fmt.Println()
	fmt.Printf("%-10s %4s %8s %10s %8s %8s %8s\n",
		"topology", "n", "w(ms)", "d1-d0(h)", "l*", "G_O", "G_R")
	for _, g := range ccncoord.AllTopologies() {
		p, err := ccncoord.ExtractParams(g)
		if err != nil {
			log.Fatalf("provisioning: %s: %v", g.Name(), err)
		}
		cfg := ccncoord.Model{
			S: 0.8, N: 1e6, C: 1e3, Routers: p.N,
			Lat:      ccncoord.LatencyFromGamma(1, p.TierGapHops, 5),
			UnitCost: p.UnitCost, Alpha: 0.8, Amortization: 1e6,
		}
		gains, err := cfg.OptimalGains()
		if err != nil {
			log.Fatalf("provisioning: %s: %v", g.Name(), err)
		}
		fmt.Printf("%-10s %4d %8.1f %10.4f %8.3f %7.1f%% %7.1f%%\n",
			p.Name, p.N, p.UnitCost, p.TierGapHops,
			gains.Level, 100*gains.OriginReduction, 100*gains.RoutingGain)
	}

	// The paper's headline phenomenon: the two sides of s = 1 pull the
	// optimal strategy in opposite directions as the network grows.
	fmt.Println()
	fmt.Println("Opposite strategies across the Zipf singular point (alpha=1, gamma=5):")
	fmt.Printf("%8s %12s %12s\n", "routers", "l* at s=0.8", "l* at s=1.6")
	for _, n := range []int{10, 50, 200, 1000} {
		fmt.Printf("%8d %12.3f %12.3f\n", n,
			ccncoord.ClosedFormLevel(5, n, 0.8),
			ccncoord.ClosedFormLevel(5, n, 1.6))
	}
	fmt.Println()
	fmt.Println("With s < 1 large networks should coordinate everything; with")
	fmt.Println("s > 1 they should coordinate nothing — provisioning must know")
	fmt.Println("the catalog's popularity skew before buying storage.")

	// Heterogeneous capacities (the paper's future-work extension): a
	// carrier with mixed router generations still gets a single optimal
	// fraction.
	h := ccncoord.HeteroModel{
		S: 0.8, N: 1e6,
		Capacities: []float64{250, 500, 1000, 2000, 4000},
		Lat:        ccncoord.LatencyFromGamma(1, 2.2842, 5),
		UnitCost:   26.7, Alpha: 0.8, Amortization: 1e6,
	}
	l, err := h.OptimalLevel()
	if err != nil {
		log.Fatalf("provisioning: heterogeneous: %v", err)
	}
	fmt.Println()
	fmt.Printf("Heterogeneous fleet (250..4000 slots): coordinate fraction %.3f of each router\n", l)
}
