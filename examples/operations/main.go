// Operations walkthrough: what the coordinated placement looks like
// under real operating conditions the analytical model abstracts away —
// packet loss with retransmission, finite link capacity under rising
// load, and latency tail behavior. The placement's origin-load advantage
// survives all of it; only latency pays.
//
// Run with:
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"

	"ccncoord"
)

// base returns the reference coordinated scenario on US-A.
func base() ccncoord.Scenario {
	return ccncoord.Scenario{
		Topology:      ccncoord.USA(),
		CatalogSize:   20000,
		ZipfS:         0.8,
		Capacity:      150,
		Coordinated:   75,
		Policy:        ccncoord.PolicyCoordinated,
		Requests:      30000,
		Seed:          9,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
}

func main() {
	lossSweep()
	fmt.Println()
	congestionSweep()
}

func lossSweep() {
	fmt.Println("Packet loss with interest retransmission (retx timeout 300 ms)")
	fmt.Printf("%10s %12s %12s %10s %14s\n", "loss", "origin load", "mean (ms)", "p99 (ms)", "retransmits")
	for _, loss := range []float64{0, 0.05, 0.15} {
		sc := base()
		sc.LossRate = loss
		if loss > 0 {
			sc.RetxTimeout = 300
		}
		res, err := ccncoord.Run(sc)
		if err != nil {
			log.Fatalf("operations: loss %v: %v", loss, err)
		}
		fmt.Printf("%10.2f %12.4f %12.2f %10.2f %14d\n",
			loss, res.OriginLoad, res.MeanLatency, res.LatencyP99, res.Retransmissions)
	}
	fmt.Println("\nThe origin load — the provisioning decision's outcome — is")
	fmt.Println("untouched by loss; retransmission pays for it in latency only.")
}

func congestionSweep() {
	fmt.Println("Finite link capacity (0.2 contents/ms) under rising offered load")
	fmt.Printf("%18s %12s %10s %16s\n", "inter-arrival (ms)", "mean (ms)", "p99 (ms)", "queueing (ms)")
	for _, ia := range []float64{8, 2, 1} {
		sc := base()
		sc.LinkRate = 0.2
		sc.MeanInterArrival = ia
		res, err := ccncoord.Run(sc)
		if err != nil {
			log.Fatalf("operations: inter-arrival %v: %v", ia, err)
		}
		fmt.Printf("%18g %12.2f %10.2f %16.3f\n",
			ia, res.MeanLatency, res.LatencyP99, res.MeanQueueingDelay)
	}
	fmt.Println("\nAs utilization approaches link capacity, queueing dominates the")
	fmt.Println("latency the model predicts — capacity planning must leave headroom")
	fmt.Println("for the coordination traffic the optimal strategy induces.")
}
