// Quickstart: compute the optimal in-network caching strategy for a
// content-centric network with the paper's analytical model.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccncoord"
)

func main() {
	// A network of 20 routers, each able to store 1,000 unit-size
	// contents out of a catalog of one million with Zipf(0.8)
	// popularity. Fetching from a peer router costs 2.28 hops more than
	// a local hit, and the origin is 5x that gap further away
	// (gamma = 5). Routing performance is weighted 80/20 against the
	// coordination cost.
	cfg := ccncoord.Model{
		S:            0.8,
		N:            1e6,
		C:            1e3,
		Routers:      20,
		Lat:          ccncoord.LatencyFromGamma(1, 2.2842, 5),
		UnitCost:     26.7,
		Alpha:        0.8,
		Amortization: 1e6, // coordination cost amortized per catalog-volume of requests
	}

	gains, err := cfg.OptimalGains()
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("Optimal coordination level l*: %.3f\n", gains.Level)
	fmt.Printf("  -> dedicate %.0f of %.0f slots per router to coordinated caching\n",
		gains.X, cfg.C)
	fmt.Printf("Origin load reduction G_O:     %.1f%%\n", 100*gains.OriginReduction)
	fmt.Printf("Routing improvement G_R:       %.1f%%\n", 100*gains.RoutingGain)

	// With alpha = 1 (ignore coordination cost) the closed form of
	// Theorem 2 applies and depends only on gamma, n, and s — the
	// latency scale-free property.
	fmt.Printf("Closed form at alpha=1:        %.3f\n",
		ccncoord.ClosedFormLevel(5, cfg.Routers, cfg.S))
}
