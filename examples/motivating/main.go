// Motivating example: reproduce the paper's Section II scenario (Figure
// 1 / Table I) on the packet-level CCN simulator — three routers, an
// origin behind R0, two client flows {a, a, b}, and the coordinated vs
// non-coordinated trade-off measured rather than assumed.
//
// Run with:
//
//	go run ./examples/motivating
package main

import (
	"fmt"
	"log"

	"ccncoord"
)

func main() {
	cmp, err := ccncoord.MotivatingExample(100)
	if err != nil {
		log.Fatalf("motivating: %v", err)
	}

	fmt.Println("Section II motivating example (measured on the packet simulator)")
	fmt.Println()
	fmt.Printf("%-22s %-18s %s\n", "", "non-coordinated", "coordinated")
	fmt.Printf("%-22s %-18s %s\n", "load on origin",
		pct(cmp.NonCoordinated.OriginLoad), pct(cmp.Coordinated.OriginLoad))
	fmt.Printf("%-22s %-18.2f %.2f\n", "routing hop count",
		cmp.NonCoordinated.MeanHops, cmp.Coordinated.MeanHops)
	fmt.Printf("%-22s %-18d %d\n", "coordination messages",
		cmp.NonCoordinated.CoordMessages, cmp.Coordinated.CoordMessages)
	fmt.Println()
	fmt.Println("Coordinating R1 and R2 eliminates origin traffic and shortens")
	fmt.Println("routes at the price of one coordination message — the trade-off")
	fmt.Println("the paper's model quantifies at network scale.")
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }
