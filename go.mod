module ccncoord

go 1.24
